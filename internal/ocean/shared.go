package ocean

// Shared-memory parallel stepping. Where parallel.go distributes row blocks
// over message-passing ranks with halo exchanges, this driver runs the same
// kernels on a worker pool over the same shared arrays. The decomposition
// rules that make the result bit-identical to the serial driver for any
// worker count:
//
//   - Every kernel invocation becomes a phase whose row ranges partition the
//     domain: each row is written by exactly one worker, with the same
//     per-cell operation order as the serial sweep. pool.Run's barrier
//     separates phases, standing in for the serial driver's sequencing (and
//     for the mp driver's halo exchanges — in shared memory the "exchange"
//     is free because neighbours read the same arrays).
//   - Kernels whose serial form used a shared scratch buffer either get a
//     per-worker buffer (biharmonic lap, tracer tendency, vertical column
//     flux, polar-filter FFT workspace, mixing columns) or write the shared
//     buffer owner-only by row with a barrier before readers (barotropic
//     divergence, smoothing increments).
//   - The horizontal tracer tendency is the one cross-row accumulation: it
//     is split into a flux-tendency phase into per-worker buffers (each
//     worker revisits the faces of its rows in serial order, so every cell's
//     sum has the serial FP order) and an apply phase after the barrier.
//
// Column-local kernels (mixing, convective adjustment, pressure, EOS) are
// trivially order-preserving; they parallelize by rows unchanged.
//
// Every phase body is bound ONCE in bindSharedPhases and reused each step,
// with per-step inputs staged through sharedPhases fields: a closure
// literal at a pool.Run call site is heap-allocated on every call (see
// internal/pool's allocation contract), which would break the
// steady-state zero-allocation guarantee of the coupled step.

// sharedPhases carries the pre-bound phase closures of the shared-memory
// driver and the staged per-phase parameters.
type sharedPhases struct {
	f   *Forcing  // current forcing
	fld []float64 // field being smoothed (barotropic / velocity phases)
	k   int       // level of fld / q
	q   []float64 // tracer level being transported

	vertVelFull   func(w, lo, hi int)
	slowMomBiharm func(w, lo, hi int)
	tracerTend    func(w, lo, hi int)
	tracerApply   func(w, lo, hi int)
	surfForce     func(w, lo, hi int)
	densityFull   func(w, lo, hi int)
	vertMix       func(w, lo, hi int)
	convAdj       func(w, lo, hi int)
	freeze        func(w, lo, hi int)
	vertTracer    func(w, lo, hi int)
	baroPress     func(w, lo, hi int)
	internal      func(w, lo, hi int)
	btDiv         func(w, lo, hi int)
	btMom         func(w, lo, hi int)
	btCont        func(w, lo, hi int)
	btSmoothC     func(w, lo, hi int)
	btSmoothA     func(w, lo, hi int)
	coupleBt      func(w, lo, hi int)
	unsplitFS     func(w, lo, hi int)
	svC           func(w, lo, hi int)
	svA           func(w, lo, hi int)
	polar         func(w, lo, hi int)
	clamp         func(w, lo, hi int)
}

// bindSharedPhases builds the phase closures against this model's
// per-worker scratch. Interior phases receive block ranges over nlat-2 rows
// and shift by one: they write rows [1, nlat-1) while the closed boundary
// rows stay untouched, as in the serial driver. Full phases cover every
// row, matching the serial ghost-extended ranges ge0=0, ge1=nlat.
//
//foam:hotphases
func (m *Model) bindSharedPhases() *sharedPhases {
	ph := &sharedPhases{}
	dt := m.cfg.DtTracer
	dtf := m.cfg.DtInternal
	dtb := m.cfg.DtBaro

	ph.vertVelFull = func(_, j0, j1 int) { m.verticalVelocity(j0, j1) }
	ph.slowMomBiharm = func(w, r0, r1 int) {
		m.slowMomentumCells(ph.f, 1+r0, 1+r1)
		if !m.cfg.NoBiharmonic {
			m.biharmonic(m.wscr[w], 1+r0, 1+r1)
		}
	}
	ph.tracerTend = func(w, r0, r1 int) { m.tracerFluxTend(m.wscr[w], ph.q, ph.k, 1+r0, 1+r1, dt) }
	ph.tracerApply = func(w, r0, r1 int) { m.tracerApply(m.wscr[w], ph.q, ph.k, 1+r0, 1+r1, dt) }
	ph.surfForce = func(_, r0, r1 int) { m.surfaceTracerForcing(ph.f, 1+r0, 1+r1, dt) }
	ph.densityFull = func(_, j0, j1 int) { m.density(j0, j1) }
	ph.vertMix = func(w, r0, r1 int) { m.verticalMixing(m.wmix[w], 1+r0, 1+r1, dt) }
	ph.convAdj = func(_, r0, r1 int) { m.convectiveAdjust(1+r0, 1+r1) }
	ph.freeze = func(_, r0, r1 int) { m.freezeClamp(1+r0, 1+r1, dt) }
	ph.vertTracer = func(w, j0, j1 int) { m.verticalTracerStep(m.wcol[w], j0, j1, dtf) }
	ph.baroPress = func(_, j0, j1 int) { m.baroclinicPressure(j0, j1) }
	ph.internal = func(_, r0, r1 int) { m.internalStep(1+r0, 1+r1, dtf) }
	ph.btDiv = func(_, j0, j1 int) { m.btDivergence(j0, j1) }
	ph.btMom = func(_, r0, r1 int) { m.btMomentum(1+r0, 1+r1, dtb) }
	ph.btCont = func(_, r0, r1 int) { m.btContinuity(1+r0, 1+r1, dtb) }
	ph.btSmoothC = func(_, r0, r1 int) { m.btSmoothCompute(ph.fld, 1+r0, 1+r1) }
	ph.btSmoothA = func(_, r0, r1 int) { m.btSmoothApply(ph.fld, 1+r0, 1+r1) }
	ph.coupleBt = func(_, r0, r1 int) { m.coupleBarotropic(1+r0, 1+r1) }
	ph.unsplitFS = func(_, r0, r1 int) { m.unsplitFreeSurface(ph.f, 1+r0, 1+r1, dtf) }
	ph.svC = func(_, r0, r1 int) { m.svCompute(ph.fld, ph.k, 1+r0, 1+r1) }
	ph.svA = func(_, r0, r1 int) { m.svApply(ph.fld, ph.k, 1+r0, 1+r1) }
	ph.polar = func(w, r0, r1 int) { m.polarFilter(m.wfilt[w], 1+r0, 1+r1) }
	ph.clamp = func(_, r0, r1 int) { m.clampVelocities(1+r0, 1+r1) }
	return ph
}

func (m *Model) stepShared(f *Forcing) {
	nlat := m.cfg.NLat
	p := m.pool
	ph := m.shPh
	ph.f = f

	// 1.-2. Slow tendencies, horizontal transport and column physics at the
	// long tracer step (same sequence as stepRows).
	p.Run(nlat, ph.vertVelFull)
	p.Run(nlat-2, ph.slowMomBiharm)
	m.horizontalTracerShared()
	p.Run(nlat-2, ph.surfForce)
	p.Run(nlat, ph.densityFull)
	p.Run(nlat-2, ph.vertMix)
	p.Run(nlat-2, ph.convAdj)
	p.Run(nlat-2, ph.freeze)

	// 3. Fast subcycles.
	nsub := m.cfg.Subcycles()
	nbaro := m.cfg.BaroSubcycles()
	for n := 0; n < nsub; n++ {
		p.Run(nlat, ph.vertVelFull)
		p.Run(nlat, ph.vertTracer)
		p.Run(nlat, ph.densityFull)
		p.Run(nlat, ph.baroPress)
		p.Run(nlat-2, ph.internal)
		if m.cfg.Split {
			for b := 0; b < nbaro; b++ {
				// Forward-backward barotropic step as barrier-separated
				// sub-phases (divergence -> momentum -> continuity ->
				// per-field smoothing), mirroring the sync points of the
				// mp driver.
				p.Run(nlat, ph.btDiv)
				p.Run(nlat-2, ph.btMom)
				p.Run(nlat-2, ph.btCont)
				for _, fld := range [3][]float64{m.eta, m.ubt, m.vbt} {
					ph.fld = fld
					p.Run(nlat-2, ph.btSmoothC)
					p.Run(nlat-2, ph.btSmoothA)
				}
			}
			p.Run(nlat-2, ph.coupleBt)
		} else {
			p.Run(nlat-2, ph.unsplitFS)
		}
		// Velocity smoothing reads just-updated neighbour velocities, so
		// each level/component runs as a compute phase into m.scr
		// (owner-only rows) and an apply phase after the barrier.
		for k := 0; k < m.cfg.NLev; k++ {
			ph.k = k
			for _, fld := range [2][]float64{m.u[k], m.v[k]} {
				ph.fld = fld
				p.Run(nlat-2, ph.svC)
				p.Run(nlat-2, ph.svA)
			}
		}
	}

	// 6.-7. Polar filter (row-local, per-worker FFT workspace) and clamp.
	p.Run(nlat-2, ph.polar)
	p.Run(nlat-2, ph.clamp)
	ph.f, ph.fld, ph.q = nil, nil, nil
}

// horizontalTracerShared runs the horizontal tracer transport as a
// flux-tendency phase into per-worker buffers followed by an apply phase,
// per tracer and level. The apply must not overlap the tendency computation
// of any worker because the tendency reads tracer values on neighbour rows.
func (m *Model) horizontalTracerShared() {
	nlat := m.cfg.NLat
	ph := m.shPh
	for _, tr := range [2][][]float64{m.t, m.s} {
		for k := 0; k < m.cfg.NLev; k++ {
			ph.q, ph.k = tr[k], k
			m.pool.Run(nlat-2, ph.tracerTend)
			m.pool.Run(nlat-2, ph.tracerApply)
		}
	}
}
