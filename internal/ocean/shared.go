package ocean

// Shared-memory parallel stepping. Where parallel.go distributes row blocks
// over message-passing ranks with halo exchanges, this driver runs the same
// kernels on a worker pool over the same shared arrays. The decomposition
// rules that make the result bit-identical to the serial driver for any
// worker count:
//
//   - Every kernel invocation becomes a phase whose row ranges partition the
//     domain: each row is written by exactly one worker, with the same
//     per-cell operation order as the serial sweep. pool.Run's barrier
//     separates phases, standing in for the serial driver's sequencing (and
//     for the mp driver's halo exchanges — in shared memory the "exchange"
//     is free because neighbours read the same arrays).
//   - Kernels whose serial form used a shared scratch buffer either get a
//     per-worker buffer (biharmonic lap, tracer tendency, vertical column
//     flux, polar-filter FFT workspace) or write the shared buffer
//     owner-only by row with a barrier before readers (barotropic
//     divergence, smoothing increments).
//   - The horizontal tracer tendency is the one cross-row accumulation: it
//     is split into a flux-tendency phase into per-worker buffers (each
//     worker revisits the faces of its rows in serial order, so every cell's
//     sum has the serial FP order) and an apply phase after the barrier.
//
// Column-local kernels (mixing, convective adjustment, pressure, EOS) are
// trivially order-preserving; they parallelize by rows unchanged.
func (m *Model) stepShared(f *Forcing) {
	dt := m.cfg.DtTracer
	nlat := m.cfg.NLat
	p := m.pool

	// interior phases write rows [1, nlat-1) (the closed boundary rows stay
	// untouched, as in the serial driver); full phases cover every row,
	// matching the serial ghost-extended ranges ge0=0, ge1=nlat.
	interior := func(fn func(w, j0, j1 int)) {
		p.Run(nlat-2, func(w, r0, r1 int) { fn(w, 1+r0, 1+r1) })
	}
	full := func(fn func(w, j0, j1 int)) {
		p.Run(nlat, fn)
	}

	// 1.-2. Slow tendencies, horizontal transport and column physics at the
	// long tracer step (same sequence as stepRows).
	full(func(_, j0, j1 int) { m.verticalVelocity(j0, j1) })
	interior(func(w, j0, j1 int) {
		m.slowMomentumCells(f, j0, j1)
		if !m.cfg.NoBiharmonic {
			m.biharmonic(m.wscr[w], j0, j1)
		}
	})
	m.horizontalTracerShared(dt)
	interior(func(_, j0, j1 int) { m.surfaceTracerForcing(f, j0, j1, dt) })
	full(func(_, j0, j1 int) { m.density(j0, j1) })
	interior(func(_, j0, j1 int) { m.verticalMixing(j0, j1, dt) })
	interior(func(_, j0, j1 int) { m.convectiveAdjust(j0, j1) })
	interior(func(_, j0, j1 int) { m.freezeClamp(j0, j1, dt) })

	// 3. Fast subcycles.
	nsub := m.cfg.Subcycles()
	nbaro := m.cfg.BaroSubcycles()
	dtf := m.cfg.DtInternal
	dtb := m.cfg.DtBaro
	for n := 0; n < nsub; n++ {
		full(func(_, j0, j1 int) { m.verticalVelocity(j0, j1) })
		full(func(w, j0, j1 int) { m.verticalTracerStep(m.wcol[w], j0, j1, dtf) })
		full(func(_, j0, j1 int) { m.density(j0, j1) })
		full(func(_, j0, j1 int) { m.baroclinicPressure(j0, j1) })
		interior(func(_, j0, j1 int) { m.internalStep(j0, j1, dtf) })
		if m.cfg.Split {
			for b := 0; b < nbaro; b++ {
				// Forward-backward barotropic step as barrier-separated
				// sub-phases (divergence -> momentum -> continuity ->
				// per-field smoothing), mirroring the sync points of the
				// mp driver.
				full(func(_, j0, j1 int) { m.btDivergence(j0, j1) })
				interior(func(_, j0, j1 int) { m.btMomentum(j0, j1, dtb) })
				interior(func(_, j0, j1 int) { m.btContinuity(j0, j1, dtb) })
				for _, fld := range [3][]float64{m.eta, m.ubt, m.vbt} {
					interior(func(_, j0, j1 int) { m.btSmoothCompute(fld, j0, j1) })
					interior(func(_, j0, j1 int) { m.btSmoothApply(fld, j0, j1) })
				}
			}
			interior(func(_, j0, j1 int) { m.coupleBarotropic(j0, j1) })
		} else {
			interior(func(_, j0, j1 int) { m.unsplitFreeSurface(f, j0, j1, dtf) })
		}
		// Velocity smoothing reads just-updated neighbour velocities, so
		// each level/component runs as a compute phase into m.scr
		// (owner-only rows) and an apply phase after the barrier.
		for k := 0; k < m.cfg.NLev; k++ {
			for _, fld := range [2][]float64{m.u[k], m.v[k]} {
				interior(func(_, j0, j1 int) { m.svCompute(fld, k, j0, j1) })
				interior(func(_, j0, j1 int) { m.svApply(fld, k, j0, j1) })
			}
		}
	}

	// 6.-7. Polar filter (row-local, per-worker FFT workspace) and clamp.
	interior(func(w, j0, j1 int) { m.polarFilter(m.wfilt[w], j0, j1) })
	interior(func(_, j0, j1 int) { m.clampVelocities(j0, j1) })
}

// horizontalTracerShared runs the horizontal tracer transport as a
// flux-tendency phase into per-worker buffers followed by an apply phase,
// per tracer and level. The apply must not overlap the tendency computation
// of any worker because the tendency reads tracer values on neighbour rows.
func (m *Model) horizontalTracerShared(dt float64) {
	nlat := m.cfg.NLat
	for _, tr := range [2][][]float64{m.t, m.s} {
		for k := 0; k < m.cfg.NLev; k++ {
			q := tr[k]
			m.pool.Run(nlat-2, func(w, r0, r1 int) {
				m.tracerFluxTend(m.wscr[w], q, k, 1+r0, 1+r1, dt)
			})
			m.pool.Run(nlat-2, func(w, r0, r1 int) {
				m.tracerApply(m.wscr[w], q, k, 1+r0, 1+r1, dt)
			})
		}
	}
}
