// Package ocean implements the FOAM ocean: a z-coordinate primitive-equation
// model on an unstaggered (A-grid) Mercator latitude-longitude grid, with the
// three speed techniques of the paper's Section 4.2:
//
//  1. an explicitly represented free surface whose dynamics are artificially
//     slowed (Tobis's slowed barotropic dynamics);
//  2. the free surface split into a separate two-dimensional system coupled
//     to the internal ocean, so the 3-D internal dynamics can take a much
//     longer step; and
//  3. subcycled time stepping — the internal step is used only for the
//     fastest internal dynamics (Coriolis, baroclinic pressure gradients)
//     while advection and diffusion use a yet longer step.
//
// Setting Split=false and Slowdown=1 recovers a conventional unsplit
// explicit free-surface model whose single time step is limited by the
// unslowed external gravity wave — the in-repo baseline for experiments E5,
// E7 and E10.
//
//foam:deterministic
package ocean

import (
	"fmt"
	"math"
)

// Physical constants.
//
//foam:units Rho0=kg/m^3 CpOcean=J/kg/K TFreeze=degC GravOc=m/s^2
const (
	Rho0    = 1025.0  // Boussinesq reference density, kg/m^3
	CpOcean = 3990.0  // seawater heat capacity, J/(kg K)
	TFreeze = -1.92   // sea water freezing clamp, deg C (paper Section 4.3)
	GravOc  = 9.80616 // m/s^2
)

// Expansion coefficients of the simplified UNESCO-like equation of state
// rho' = Rho0*(EosAlpha*(T-10) + EosAlpha2*(T-10)^2 + EosBeta*(S-35)):
// each term is a dimensionless density fraction, so the coefficients carry
// the inverse powers of the temperature and salinity anomalies.
//
//foam:units EosAlpha=1/K EosAlpha2=1/K^2 EosBeta=1/psu
const (
	EosAlpha  = -1.67e-4 // linear thermal expansion about 10 degC
	EosAlpha2 = -0.78e-5 // quadratic thermal expansion (cabbeling)
	EosBeta   = 7.6e-4   // haline contraction about 35 psu
)

// Config describes an ocean configuration.
type Config struct {
	NLat, NLon, NLev   int
	LatSouth, LatNorth float64 // domain extent, degrees

	DtTracer   float64 // advection/diffusion/physics step, s (21600 in FOAM)
	DtInternal float64 // fast internal dynamics step, s
	DtBaro     float64 // 2-D barotropic substep, s (the fastest of the three)
	Slowdown   float64 // barotropic gravity-wave slowdown factor (1 = physical)
	Split      bool    // split 2-D barotropic subsystem from the internal mode

	AH         float64 // horizontal tracer diffusivity, m^2/s
	AM         float64 // horizontal Laplacian viscosity, m^2/s
	BiharmCoef float64 // nondimensional del^4 momentum damping per tracer step
	KappaB     float64 // background vertical diffusivity, m^2/s
	Kappa0     float64 // Richardson-mixing amplitude, m^2/s
	SteepMix   bool    // steeper Ri exponent (Peters-Gregg-Toole), paper default

	TotalDepth     float64 // m
	PolarFilterLat float64 // apply Fourier filter poleward of this latitude, deg

	// Ablation switches (experiment E10): disable individual slow terms.
	NoMomentumAdvection bool
	NoBiharmonic        bool

	// Mode selects the ocean representation the scenario engine composes:
	// "" or ModeFull is the full primitive-equation model above; ModeSlab
	// is a motionless mixed layer that stores heat and fresh water and
	// freezes (the classic slab ocean of sensitivity studies); ModeOff
	// prescribes the initial surface state and evolves nothing.
	Mode string

	// SlabDepth is the slab mixed-layer depth in m (0 means 50).
	SlabDepth float64

	// RotationScale multiplies the planetary rotation rate in the Coriolis
	// parameter (0 means 1, the physical rate).
	RotationScale float64
}

// Ocean representation modes (Config.Mode).
const (
	ModeFull = "full"
	ModeSlab = "slab"
	ModeOff  = "off"
)

// rotation returns the effective rotation multiplier (RotationScale with
// the zero value meaning the physical rate).
func (c Config) rotation() float64 {
	//foam:allow floatcmp the unset zero value is an exact literal 0, not a computed quantity
	if c.RotationScale == 0 {
		return 1
	}
	return c.RotationScale
}

// slabDepth returns the effective slab mixed-layer depth, m.
func (c Config) slabDepth() float64 {
	//foam:allow floatcmp the unset zero value is an exact literal 0, not a computed quantity
	if c.SlabDepth == 0 {
		return 50
	}
	return c.SlabDepth
}

// DefaultConfig is the paper's configuration: 128 x 128 Mercator grid
// (~1.4 deg x 2.8 deg), 16 stretched levels, 6-hour tracer step, 45-minute
// internal step, slowdown 16.
func DefaultConfig() Config {
	return Config{
		NLat: 128, NLon: 128, NLev: 16,
		LatSouth: -72, LatNorth: 72,
		DtTracer:       21600,
		DtInternal:     5400,
		DtBaro:         2700,
		Slowdown:       16,
		Split:          true,
		AH:             1.0e4,
		AM:             1.0e5,
		BiharmCoef:     0.25,
		KappaB:         1.0e-5,
		Kappa0:         5.0e-3,
		SteepMix:       true,
		TotalDepth:     4500,
		PolarFilterLat: 66,
	}
}

// BaselineConfig is the conventional comparator: no splitting, physical
// gravity, one short step for everything, sized by the external gravity
// wave CFL on the finest row.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Split = false
	c.Slowdown = 1
	// dx at the poleward rows ~ a*cos(72 deg)*dlon; external wave sqrt(gH).
	dx := 6.371e6 * math.Cos(72*math.Pi/180) * 2 * math.Pi / float64(c.NLon)
	cext := math.Sqrt(GravOc * c.TotalDepth)
	dt := 0.4 * dx / cext
	c.DtInternal = dt
	c.DtBaro = dt
	c.DtTracer = dt
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NLat < 4 || c.NLon < 4 || c.NLev < 2 {
		return fmt.Errorf("ocean: grid too small %dx%dx%d", c.NLat, c.NLon, c.NLev)
	}
	if c.DtTracer < c.DtInternal {
		return fmt.Errorf("ocean: tracer step %.0f shorter than internal step %.0f", c.DtTracer, c.DtInternal)
	}
	if c.Slowdown < 1 {
		return fmt.Errorf("ocean: slowdown %.2f must be >= 1", c.Slowdown)
	}
	if c.DtBaro <= 0 {
		return fmt.Errorf("ocean: DtBaro must be positive")
	}
	if c.DtInternal < c.DtBaro {
		return fmt.Errorf("ocean: internal step %.0f shorter than barotropic step %.0f", c.DtInternal, c.DtBaro)
	}
	if c.LatSouth >= c.LatNorth {
		return fmt.Errorf("ocean: bad latitude range")
	}
	switch c.Mode {
	case "", ModeFull, ModeSlab, ModeOff:
	default:
		return fmt.Errorf("ocean: unknown mode %q (want %q, %q or %q)", c.Mode, ModeFull, ModeSlab, ModeOff)
	}
	if c.SlabDepth < 0 {
		return fmt.Errorf("ocean: negative slab depth %g", c.SlabDepth)
	}
	if c.RotationScale < 0 {
		return fmt.Errorf("ocean: negative rotation scale %g", c.RotationScale)
	}
	if c.AH < 0 || c.AM < 0 {
		return fmt.Errorf("ocean: negative horizontal diffusivity (AH=%g, AM=%g)", c.AH, c.AM)
	}
	if c.KappaB < 0 || c.Kappa0 < 0 {
		return fmt.Errorf("ocean: negative vertical diffusivity (KappaB=%g, Kappa0=%g)", c.KappaB, c.Kappa0)
	}
	if c.BiharmCoef < 0 {
		return fmt.Errorf("ocean: negative biharmonic damping %g", c.BiharmCoef)
	}
	return nil
}

// Subcycles returns the number of internal steps per tracer step.
func (c Config) Subcycles() int {
	n := int(math.Round(c.DtTracer / c.DtInternal))
	if n < 1 {
		n = 1
	}
	return n
}

// BaroSubcycles returns the number of barotropic substeps per internal step.
func (c Config) BaroSubcycles() int {
	n := int(math.Round(c.DtInternal / c.DtBaro))
	if n < 1 {
		n = 1
	}
	return n
}
