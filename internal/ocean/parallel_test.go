package ocean

import (
	"math"
	"testing"

	"foam/internal/mp"
)

// The decisive parallel-correctness test: the row-block message-passing
// integration must be bit-identical to the serial one on the owned rows
// (column-local quantities are recomputed on ghost rows, so no
// floating-point reordering occurs anywhere).
func TestParallelMatchesSerial(t *testing.T) {
	cfg := testConfig()
	kmt := basinKMT(cfg)
	n := cfg.NLat * cfg.NLon

	// Forcing: wind + heating pattern so every term is exercised.
	f := NewForcing(n)
	serial, err := New(cfg, kmt)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < cfg.NLat; j++ {
		lat := serial.grid.Lats[j]
		for i := 0; i < cfg.NLon; i++ {
			c := j*cfg.NLon + i
			f.TauX[c] = -0.08 * math.Cos(3*lat)
			f.Heat[c] = 100 * math.Cos(lat)
			f.FreshWater[c] = 2e-5 * math.Sin(lat)
		}
	}

	const steps = 5
	for s := 0; s < steps; s++ {
		serial.Step(f)
	}

	for _, p := range []int{2, 3, 5} {
		world := mp.NewWorld(p)
		models := make([]*Model, p)
		for r := range models {
			models[r], err = New(cfg, kmt)
			if err != nil {
				t.Fatal(err)
			}
		}
		world.Run(func(c *mp.Comm) {
			r := c.Rank()
			j0, j1 := BlockRange(cfg.NLat, p, r)
			for s := 0; s < steps; s++ {
				models[r].StepParallel(f, c, j0, j1)
			}
			models[r].GatherState(c, j0, j1)
		})
		got := models[0]
		fields := map[string][2][][]float64{
			"u": {serial.u, got.u},
			"v": {serial.v, got.v},
			"t": {serial.t, got.t},
			"s": {serial.s, got.s},
		}
		for name, pair := range fields {
			for k := 0; k < cfg.NLev; k++ {
				for c := 0; c < n; c++ {
					if kmtAt(serial, c) <= k {
						continue
					}
					if d := math.Abs(pair[0][k][c] - pair[1][k][c]); d != 0 {
						t.Fatalf("p=%d field %s level %d cell %d: serial %v parallel %v (d=%e)",
							p, name, k, c, pair[0][k][c], pair[1][k][c], d)
					}
				}
			}
		}
		for c := 0; c < n; c++ {
			if d := math.Abs(serial.eta[c] - got.eta[c]); d != 0 {
				t.Fatalf("p=%d eta mismatch at %d: %v vs %v", p, c, serial.eta[c], got.eta[c])
			}
			if serial.ubt[c] != got.ubt[c] || serial.vbt[c] != got.vbt[c] {
				t.Fatalf("p=%d barotropic mismatch at %d", p, c)
			}
		}
	}
}

func kmtAt(m *Model, c int) int { return m.kmt[c] }

func TestBlockRangeCoversInterior(t *testing.T) {
	nlat := 32
	for _, p := range []int{1, 2, 3, 5, 7} {
		prev := 1
		for r := 0; r < p; r++ {
			j0, j1 := BlockRange(nlat, p, r)
			if j0 != prev {
				t.Fatalf("p=%d r=%d: gap at %d (j0=%d)", p, r, prev, j0)
			}
			if j1 <= j0 && p <= nlat-2 {
				t.Fatalf("p=%d r=%d: empty block", p, r)
			}
			prev = j1
		}
		if prev != nlat-1 {
			t.Fatalf("p=%d: blocks end at %d, want %d", p, prev, nlat-1)
		}
	}
}
