package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAnomaliesZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := make([][]float64, 50)
	for t2 := range series {
		series[t2] = make([]float64, 10)
		for c := range series[t2] {
			series[t2][c] = rng.NormFloat64() + float64(c)
		}
	}
	means := Anomalies(series)
	for c := 0; c < 10; c++ {
		s := 0.0
		for t2 := range series {
			s += series[t2][c]
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("column %d mean not removed: %v", c, s)
		}
		if math.Abs(means[c]-float64(c)) > 0.5 {
			t.Fatalf("column %d mean estimate %v", c, means[c])
		}
	}
}

func TestRemoveSeasonalCycle(t *testing.T) {
	// Pure 12-step cycle must vanish entirely.
	series := make([][]float64, 120)
	for ti := range series {
		series[ti] = []float64{math.Sin(2 * math.Pi * float64(ti%12) / 12)}
	}
	RemoveSeasonalCycle(series, 12)
	for ti := range series {
		if math.Abs(series[ti][0]) > 1e-12 {
			t.Fatalf("seasonal cycle survives at %d: %v", ti, series[ti][0])
		}
	}
}

func TestLanczosLowPassRemovesFastKeepsSlow(t *testing.T) {
	n := 400
	series := make([][]float64, n)
	for ti := range series {
		slow := math.Sin(2 * math.Pi * float64(ti) / 120) // period 120
		fast := math.Sin(2 * math.Pi * float64(ti) / 6)   // period 6
		series[ti] = []float64{slow + fast}
	}
	out := LanczosLowPass(series, 60, 30)
	// Compare against the pure slow signal over the valid window.
	var errSlow, ampFast float64
	for ti := range out {
		want := math.Sin(2 * math.Pi * float64(ti+30) / 120)
		errSlow += math.Abs(out[ti][0] - want)
		_ = ampFast
	}
	errSlow /= float64(len(out))
	// A Lanczos window attenuates the passband slightly near the cutoff;
	// ~10% is expected for a period-120 signal with a 60-step cutoff.
	if errSlow > 0.15 {
		t.Fatalf("low-pass distorted the slow signal: mean abs err %v", errSlow)
	}
	// The fast signal must be essentially gone: correlate output with it.
	var fastAmp float64
	for ti := range out {
		fastAmp += out[ti][0] * math.Sin(2*math.Pi*float64(ti+30)/6)
	}
	fastAmp = math.Abs(fastAmp) * 2 / float64(len(out))
	if fastAmp > 0.02 {
		t.Fatalf("fast signal survives: amplitude %v", fastAmp)
	}
}

func TestLanczosWeightsNormalized(t *testing.T) {
	w := LanczosWeights(60, 30)
	s := 0.0
	for _, v := range w {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("weights sum %v", s)
	}
	if len(w) != 61 {
		t.Fatalf("weights length %d", len(w))
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	a := [][]float64{
		{2, 1},
		{1, 2},
	}
	vals, vecs := JacobiEigen(a, 50)
	// Eigenvalues 1 and 3.
	lo, hi := math.Min(vals[0], vals[1]), math.Max(vals[0], vals[1])
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Check A v = lambda v for each column.
	for k := 0; k < 2; k++ {
		for i := 0; i < 2; i++ {
			av := a[i][0]*vecs[0][k] + a[i][1]*vecs[1][k]
			if math.Abs(av-vals[k]*vecs[i][k]) > 1e-10 {
				t.Fatalf("eigenvector %d wrong", k)
			}
		}
	}
}

func TestEOFRecoversPlantedMode(t *testing.T) {
	// Construct data = pc(t) * pattern(c) + small noise; EOF mode 1 must
	// recover the pattern up to sign.
	rng := rand.New(rand.NewSource(7))
	nt, nsp := 80, 40
	pattern := make([]float64, nsp)
	for c := range pattern {
		pattern[c] = math.Sin(2 * math.Pi * float64(c) / float64(nsp))
	}
	series := make([][]float64, nt)
	for ti := range series {
		pc := 3 * math.Sin(2*math.Pi*float64(ti)/20)
		series[ti] = make([]float64, nsp)
		for c := range pattern {
			series[ti][c] = pc*pattern[c] + 0.05*rng.NormFloat64()
		}
	}
	Anomalies(series)
	w := make([]float64, nsp)
	for i := range w {
		w[i] = 1
	}
	res, err := EOF(series, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.VarFrac[0] < 0.9 {
		t.Fatalf("planted mode explains only %v", res.VarFrac[0])
	}
	corr := Correlation(res.Patterns[0], pattern)
	if math.Abs(corr) < 0.99 {
		t.Fatalf("pattern correlation %v", corr)
	}
	// Reconstruction check: pc*pattern should match the data for mode 1.
	recErr := 0.0
	for ti := 0; ti < nt; ti++ {
		for c := 0; c < nsp; c++ {
			rec := res.PCs[0][ti] * res.Patterns[0][c]
			recErr += math.Abs(rec - series[ti][c])
		}
	}
	recErr /= float64(nt * nsp)
	if recErr > 0.1 {
		t.Fatalf("mode-1 reconstruction error %v", recErr)
	}
}

func TestEOFVarianceFractionsSumBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nt, nsp := 30, 20
	series := make([][]float64, nt)
	for ti := range series {
		series[ti] = make([]float64, nsp)
		for c := range series[ti] {
			series[ti][c] = rng.NormFloat64()
		}
	}
	Anomalies(series)
	w := make([]float64, nsp)
	for i := range w {
		w[i] = 1
	}
	res, err := EOF(series, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, v := range res.VarFrac {
		if v < 0 || v > 1 {
			t.Fatalf("varfrac out of range: %v", v)
		}
		if i > 0 && v > res.VarFrac[i-1]+1e-12 {
			t.Fatal("variance fractions not descending")
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Fatalf("variance fractions sum %v", sum)
	}
}

func TestVarimaxSimpleStructure(t *testing.T) {
	// Two mixed localized patterns: varimax should unmix them.
	nsp := 40
	p1 := make([]float64, nsp)
	p2 := make([]float64, nsp)
	for c := 0; c < nsp/2; c++ {
		p1[c] = 1
	}
	for c := nsp / 2; c < nsp; c++ {
		p2[c] = 1
	}
	// Mixed at 45 degrees.
	m1 := make([]float64, nsp)
	m2 := make([]float64, nsp)
	for c := 0; c < nsp; c++ {
		m1[c] = (p1[c] + p2[c]) / math.Sqrt2
		m2[c] = (p1[c] - p2[c]) / math.Sqrt2
	}
	w := make([]float64, nsp)
	for i := range w {
		w[i] = 1
	}
	rotated, rot := Varimax([][]float64{m1, m2}, w, 100)
	// Each rotated pattern should be localized: its energy concentrated in
	// one half.
	for m := 0; m < 2; m++ {
		var left, right float64
		for c := 0; c < nsp/2; c++ {
			left += rotated[m][c] * rotated[m][c]
		}
		for c := nsp / 2; c < nsp; c++ {
			right += rotated[m][c] * rotated[m][c]
		}
		frac := math.Max(left, right) / (left + right)
		if frac < 0.95 {
			t.Fatalf("mode %d not simple after varimax: %v", m, frac)
		}
	}
	// Rotation matrix must be orthogonal.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s := rot[0][i]*rot[0][j] + rot[1][i]*rot[1][j]
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-8 {
				t.Fatalf("rotation not orthogonal")
			}
		}
	}
}

func TestFieldMetrics(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	w := []float64{1, 1, 1, 1}
	if Bias(a, b, w) != 0 || RMSE(a, b, w) != 0 {
		t.Fatal("identical fields should have zero bias and RMSE")
	}
	if c := PatternCorrelation(a, b, w); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self correlation %v", c)
	}
	neg := []float64{4, 3, 2, 1}
	if c := PatternCorrelation(a, neg, w); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti correlation %v", c)
	}
	shift := []float64{3, 4, 5, 6}
	if Bias(shift, a, w) != 2 {
		t.Fatal("bias of +2 expected")
	}
	if RMSE(shift, a, w) != 2 {
		t.Fatal("rmse of 2 expected")
	}
	if c := PatternCorrelation(a, shift, w); math.Abs(c-1) > 1e-12 {
		t.Fatal("correlation is shift-invariant")
	}
}

// Property: EOF variance fractions are invariant under orthogonal scrambling
// of time order... (weaker: under sign flip of the data).
func TestEOFSignInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nt, nsp := 12+rng.Intn(10), 8+rng.Intn(10)
		s1 := make([][]float64, nt)
		s2 := make([][]float64, nt)
		for ti := 0; ti < nt; ti++ {
			s1[ti] = make([]float64, nsp)
			s2[ti] = make([]float64, nsp)
			for c := 0; c < nsp; c++ {
				v := rng.NormFloat64()
				s1[ti][c] = v
				s2[ti][c] = -v
			}
		}
		w := make([]float64, nsp)
		for i := range w {
			w[i] = 1 + rng.Float64()
		}
		Anomalies(s1)
		Anomalies(s2)
		r1, err1 := EOF(s1, w, 3)
		r2, err2 := EOF(s2, w, 3)
		if err1 != nil || err2 != nil {
			return false
		}
		for m := range r1.VarFrac {
			if math.Abs(r1.VarFrac[m]-r2.VarFrac[m]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
