// Package stats provides the analysis tools of the paper's Section 6:
// area-weighted empirical orthogonal function (EOF) decomposition, VARIMAX
// rotation, the 60-month low-pass filtering used for Figure 4, and the
// field-comparison metrics (bias, RMSE, centered pattern correlation) used
// for Figure 3.
//
//foam:deterministic
package stats

import (
	"fmt"
	"math"
)

// Anomalies removes the time mean of each column (spatial point) of a
// [time][space] series in place and returns the means.
func Anomalies(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	nsp := len(series[0])
	mean := make([]float64, nsp)
	for _, row := range series {
		for c, v := range row {
			mean[c] += v
		}
	}
	for c := range mean {
		mean[c] /= float64(len(series))
	}
	for _, row := range series {
		for c := range row {
			row[c] -= mean[c]
		}
	}
	return mean
}

// RemoveSeasonalCycle subtracts the mean annual cycle (period steps) from a
// [time][space] series in place.
func RemoveSeasonalCycle(series [][]float64, period int) {
	if len(series) == 0 || period <= 1 {
		return
	}
	nsp := len(series[0])
	for ph := 0; ph < period; ph++ {
		mean := make([]float64, nsp)
		cnt := 0
		for t := ph; t < len(series); t += period {
			for c, v := range series[t] {
				mean[c] += v
			}
			cnt++
		}
		if cnt == 0 {
			continue
		}
		for c := range mean {
			mean[c] /= float64(cnt)
		}
		for t := ph; t < len(series); t += period {
			for c := range series[t] {
				series[t][c] -= mean[c]
			}
		}
	}
}

// LanczosLowPass filters each spatial point of a [time][space] series with
// a Lanczos low-pass filter of the given cutoff (in time steps; the paper
// uses 60 months) and half-width nw. The returned series is shorter by
// 2*nw steps.
func LanczosLowPass(series [][]float64, cutoff float64, nw int) [][]float64 {
	if len(series) <= 2*nw {
		return nil
	}
	w := LanczosWeights(cutoff, nw)
	nsp := len(series[0])
	out := make([][]float64, len(series)-2*nw)
	for t := range out {
		row := make([]float64, nsp)
		for k := -nw; k <= nw; k++ {
			wk := w[k+nw]
			src := series[t+nw+k]
			for c := 0; c < nsp; c++ {
				row[c] += wk * src[c]
			}
		}
		out[t] = row
	}
	return out
}

// LanczosWeights returns the normalized 2*nw+1 Lanczos low-pass weights for
// a cutoff period in steps.
func LanczosWeights(cutoff float64, nw int) []float64 {
	fc := 1 / cutoff
	w := make([]float64, 2*nw+1)
	sum := 0.0
	for k := -nw; k <= nw; k++ {
		var v float64
		if k == 0 {
			v = 2 * fc
		} else {
			x := math.Pi * float64(k)
			sigma := math.Sin(x/float64(nw)) / (x / float64(nw))
			v = math.Sin(2*fc*x) / x * sigma
		}
		w[k+nw] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// EOFResult holds the leading modes of an EOF decomposition.
type EOFResult struct {
	// Patterns[m] is the m-th spatial pattern (unit norm in the weighted
	// inner product).
	Patterns [][]float64
	// PCs[m][t] is the principal-component time series of mode m.
	PCs [][]float64
	// VarFrac[m] is the fraction of total variance explained by mode m.
	VarFrac []float64
}

// EOF computes the leading nModes EOFs of an anomaly [time][space] series
// with spatial weights (typically cell areas). It solves the eigenproblem
// in whichever domain (time or space) is smaller.
func EOF(series [][]float64, weights []float64, nModes int) (*EOFResult, error) {
	nt := len(series)
	if nt < 2 {
		return nil, fmt.Errorf("stats: need at least 2 time samples")
	}
	nsp := len(series[0])
	if len(weights) != nsp {
		return nil, fmt.Errorf("stats: weights length mismatch")
	}
	if nModes > nt-1 {
		nModes = nt - 1
	}
	// Weighted data matrix X[t][c] = sqrt(w_c) * anomaly.
	sq := make([]float64, nsp)
	for c, w := range weights {
		sq[c] = math.Sqrt(math.Max(w, 0))
	}
	x := make([][]float64, nt)
	for t := range x {
		x[t] = make([]float64, nsp)
		for c := 0; c < nsp; c++ {
			x[t][c] = series[t][c] * sq[c]
		}
	}
	// Time-domain covariance C[t1][t2] = X[t1] . X[t2] (nt x nt, usually
	// much smaller than space).
	cov := make([][]float64, nt)
	total := 0.0
	for t1 := 0; t1 < nt; t1++ {
		cov[t1] = make([]float64, nt)
	}
	for t1 := 0; t1 < nt; t1++ {
		for t2 := t1; t2 < nt; t2++ {
			s := dot(x[t1], x[t2])
			cov[t1][t2] = s
			cov[t2][t1] = s
		}
		total += cov[t1][t1]
	}
	vals, vecs := JacobiEigen(cov, 200)
	// Sort descending.
	idx := argsortDesc(vals)
	res := &EOFResult{}
	for m := 0; m < nModes; m++ {
		k := idx[m]
		if vals[k] <= 1e-12*total {
			break
		}
		// Spatial pattern: X^T e / sqrt(lambda), then un-weight.
		pat := make([]float64, nsp)
		for t := 0; t < nt; t++ {
			e := vecs[t][k]
			for c := 0; c < nsp; c++ {
				pat[c] += e * x[t][c]
			}
		}
		norm := math.Sqrt(vals[k])
		pc := make([]float64, nt)
		for t := 0; t < nt; t++ {
			pc[t] = vecs[t][k] * norm
		}
		for c := 0; c < nsp; c++ {
			pat[c] /= norm
			if sq[c] > 0 {
				pat[c] /= sq[c] // back to physical units
			}
			pat[c] *= 1 // pattern in field units per unit PC
		}
		res.Patterns = append(res.Patterns, pat)
		res.PCs = append(res.PCs, pc)
		res.VarFrac = append(res.VarFrac, vals[k]/total)
	}
	if len(res.Patterns) == 0 {
		return nil, fmt.Errorf("stats: degenerate series (no variance)")
	}
	return res, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func argsortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if v[idx[j]] > v[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	return idx
}

// JacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvalues and the matrix of eigenvectors (columns).
func JacobiEigen(a [][]float64, maxSweeps int) ([]float64, [][]float64) {
	n := len(a)
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = append([]float64(nil), a[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}

// Varimax rotates the given patterns (in the weighted metric) to maximize
// the variance of squared loadings — the rotation the paper applies before
// identifying the two-basin mode. Returns rotated patterns and the rotation
// matrix. Weights enter as in EOF.
func Varimax(patterns [][]float64, weights []float64, maxIter int) ([][]float64, [][]float64) {
	k := len(patterns)
	if k < 2 {
		rot := [][]float64{{1}}
		return patterns, rot
	}
	nsp := len(patterns[0])
	// Work on weighted loadings.
	sq := make([]float64, nsp)
	for c, w := range weights {
		sq[c] = math.Sqrt(math.Max(w, 0))
	}
	L := make([][]float64, nsp) // loadings [space][mode]
	for c := 0; c < nsp; c++ {
		L[c] = make([]float64, k)
		for m := 0; m < k; m++ {
			L[c][m] = patterns[m][c] * sq[c]
		}
	}
	rot := identityMat(k)
	for iter := 0; iter < maxIter; iter++ {
		changed := 0.0
		for p := 0; p < k; p++ {
			for q := p + 1; q < k; q++ {
				var u, v2, num, den float64
				for c := 0; c < nsp; c++ {
					x, y := L[c][p], L[c][q]
					uu := x*x - y*y
					vv := 2 * x * y
					num += 2 * (uu * vv)
					den += uu*uu - vv*vv
					u += uu
					v2 += vv
				}
				num -= 2 * u * v2 / float64(nsp)
				den -= (u*u - v2*v2) / float64(nsp)
				phi := 0.25 * math.Atan2(num, den)
				if math.Abs(phi) < 1e-9 {
					continue
				}
				changed += math.Abs(phi)
				cphi, sphi := math.Cos(phi), math.Sin(phi)
				for c := 0; c < nsp; c++ {
					x, y := L[c][p], L[c][q]
					L[c][p] = cphi*x + sphi*y
					L[c][q] = -sphi*x + cphi*y
				}
				for r := 0; r < k; r++ {
					x, y := rot[r][p], rot[r][q]
					rot[r][p] = cphi*x + sphi*y
					rot[r][q] = -sphi*x + cphi*y
				}
			}
		}
		if changed < 1e-8 {
			break
		}
	}
	out := make([][]float64, k)
	for m := 0; m < k; m++ {
		out[m] = make([]float64, nsp)
		for c := 0; c < nsp; c++ {
			if sq[c] > 0 {
				out[m][c] = L[c][m] / sq[c]
			}
		}
	}
	return out, rot
}

func identityMat(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	return m
}

// Bias returns the weighted mean of (a - b).
func Bias(a, b, w []float64) float64 {
	num, den := 0.0, 0.0
	for i := range a {
		num += (a[i] - b[i]) * w[i]
		den += w[i]
	}
	return num / den
}

// RMSE returns the weighted root-mean-square difference.
func RMSE(a, b, w []float64) float64 {
	num, den := 0.0, 0.0
	for i := range a {
		d := a[i] - b[i]
		num += d * d * w[i]
		den += w[i]
	}
	return math.Sqrt(num / den)
}

// PatternCorrelation returns the centered, weighted spatial correlation of
// two fields.
func PatternCorrelation(a, b, w []float64) float64 {
	var wa, wb, ws float64
	for i := range a {
		wa += a[i] * w[i]
		wb += b[i] * w[i]
		ws += w[i]
	}
	wa /= ws
	wb /= ws
	var cab, caa, cbb float64
	for i := range a {
		da := a[i] - wa
		db := b[i] - wb
		cab += da * db * w[i]
		caa += da * da * w[i]
		cbb += db * db * w[i]
	}
	if caa <= 0 || cbb <= 0 {
		return 0
	}
	return cab / math.Sqrt(caa*cbb)
}

// Correlation is the plain (unweighted, centered) correlation of two series.
func Correlation(a, b []float64) float64 {
	w := make([]float64, len(a))
	for i := range w {
		w[i] = 1
	}
	return PatternCorrelation(a, b, w)
}
