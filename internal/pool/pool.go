// Package pool provides the deterministic shared-memory worker pool behind
// FOAM-Go's real multi-core execution. It is deliberately minimal: a fixed
// set of persistent workers, static block scheduling, and nothing else.
//
// Determinism contract. Every construct in this package is chosen so that
// the *numerical result* of a parallel run is bit-identical to the serial
// one for any worker count:
//
//   - Scheduling is static: Run(n, fn) splits [0, n) into at most Workers()
//     contiguous blocks with the same arithmetic every time
//     (lo = n*w/p, hi = n*(w+1)/p). No work stealing, no channels of items,
//     no map iteration — nothing whose order depends on timing.
//   - There is no reduction machinery here at all. Callers either write
//     disjoint output elements (each element touched by exactly one worker,
//     with the same per-element operation order as the serial loop) or
//     re-sequence their reductions into a serial pass over per-worker
//     partial buffers in a fixed order. The pool cannot reorder floating
//     point arithmetic because it never performs any.
//   - A Run call returns only when every block has finished: each call is
//     its own barrier, so phases separated by Run calls are ordered exactly
//     as in the serial code.
//
// A nil *Pool, a 1-worker pool, and a nested Run (a Run issued from inside
// a worker) all execute fn(0, 0, n) inline on the calling goroutine — the
// exact serial path, not a 1-block parallel path — so Workers=1 is
// serial execution by construction, and nesting cannot deadlock.
//
// Allocation contract. Run itself allocates nothing: dispatch hands each
// persistent worker an empty-struct wakeup on its private channel and the
// worker derives its block from the staged (fn, n, nw) fields, so the only
// allocation a pooled phase can incur is the caller's own fn value. Pass a
// func stored once at construction time (not a fresh closure literal) and a
// pooled phase is allocation-free; see DESIGN.md section 9.
//
//foam:deterministic
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner is the execution contract the model components program against:
// anything that can partition [0, n) into at most Workers() blocks with the
// pool.Block arithmetic and run a phase over them. *Pool is the
// shared-memory implementation; the ranked executor substitutes a
// message-passing implementation that spreads the same blocks over mp
// ranks. Every implementation must honor the package's determinism
// contract — static Block decomposition, Run as a barrier, serial inline
// execution for nil/1-worker/nested calls — so swapping Runners can never
// change a numerical result.
type Runner interface {
	// Workers returns the maximum concurrency; callers size per-worker
	// scratch with it.
	Workers() int
	// Run partitions [0, n) with Block and calls fn(worker, lo, hi) for
	// each non-empty block, returning when all blocks are done.
	Run(n int, fn func(worker, lo, hi int))
}

// Serial is the canonical serial Runner: a typed nil *Pool, whose methods
// run everything inline on the caller. Components hold a Runner field
// initialized to Serial so "no pool attached" needs no nil checks.
var Serial Runner = (*Pool)(nil)

// Pool is a deterministic worker pool. The zero value is not usable; use
// New. A nil *Pool is valid everywhere and means "serial".
type Pool struct {
	n    int
	jobs []chan struct{}
	wg   sync.WaitGroup
	busy atomic.Bool

	// Staged call state, valid between the wakeup sends of one Run and the
	// matching wg.Wait: the channel send/receive pair orders the writes
	// below before any worker reads them.
	fn   func(worker, lo, hi int)
	curN int
	curW int
}

// New returns a pool with the given number of persistent workers.
// workers <= 0 means runtime.GOMAXPROCS(0). A 1-worker pool starts no
// goroutines and runs everything inline.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{n: workers}
	if workers == 1 {
		return p
	}
	p.jobs = make([]chan struct{}, workers)
	for w := 0; w < workers; w++ {
		ch := make(chan struct{}, 1)
		p.jobs[w] = ch
		w := w
		go func() {
			for range ch {
				lo, hi := Block(p.curN, w, p.curW)
				if lo < hi {
					p.fn(w, lo, hi)
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the worker count; 1 for a nil pool. Callers size
// per-worker scratch buffers with it.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.n
}

// Block is the pool's decomposition contract as an exported, testable
// artifact: the half-open range [lo, hi) of [0, n) owned by worker w of p
// workers. Run uses exactly this arithmetic, so the properties that make
// the decomposition a partition — blocks are contiguous, ascending in w,
// cover [0, n), and pairwise disjoint (Block(n, w, p) ends where
// Block(n, w+1, p) begins) — are the invariant the phasesafety analyzer
// assumes when it proves a phase's writes disjoint across workers: a
// phase that writes only rows derived from its own [lo, hi) by the same
// shift cannot collide with any other worker.
func Block(n, w, p int) (lo, hi int) {
	return n * w / p, n * (w + 1) / p
}

// Run partitions [0, n) into contiguous blocks, one per worker, and calls
// fn(worker, lo, hi) for each non-empty block concurrently. It returns when
// all blocks are done (each Run is a barrier). The partition is the static
// lo = n*w/p, hi = n*(w+1)/p split, so block boundaries depend only on
// (n, worker count), never on timing.
//
// Serial cases — nil pool, 1 worker, n <= 1, or a Run nested inside a
// worker of this pool — execute fn(0, 0, n) inline on the caller.
//
//foam:hotpath
func (p *Pool) Run(n int, fn func(worker, lo, hi int)) {
	if p == nil || p.n == 1 || n <= 1 || !p.busy.CompareAndSwap(false, true) {
		fn(0, 0, n)
		return
	}
	defer p.busy.Store(false)
	nw := p.n
	if nw > n {
		nw = n
	}
	p.fn, p.curN, p.curW = fn, n, nw
	p.wg.Add(nw)
	for w := 0; w < nw; w++ {
		p.jobs[w] <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
}

// Close stops the persistent workers. The pool must be idle; Run must not
// be called afterwards. Closing a nil or 1-worker pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	for _, ch := range p.jobs {
		close(ch)
	}
	p.jobs = nil
}
