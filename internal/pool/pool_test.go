package pool

import (
	"sync/atomic"
	"testing"
)

// TestPartitionCoversExactlyOnce: for a spread of (n, workers), every index
// in [0, n) is visited exactly once and block bounds are the static split.
func TestPartitionCoversExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 5, 16, 17, 40, 129} {
			seen := make([]int32, n)
			p.Run(n, func(w, lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("workers=%d n=%d: bad block [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestBlockIsPartition: the exported decomposition metadata is a partition
// of [0, n) — contiguous ascending blocks, adjacent blocks sharing their
// boundary — and matches what Run hands to workers.
func TestBlockIsPartition(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 16, 127, 129} {
			prevHi := 0
			for w := 0; w < p; w++ {
				lo, hi := Block(n, w, p)
				if lo != prevHi {
					t.Fatalf("Block(%d,%d,%d): lo=%d, want %d (blocks must tile)", n, w, p, lo, prevHi)
				}
				if hi < lo || hi > n {
					t.Fatalf("Block(%d,%d,%d): bad hi=%d", n, w, p, hi)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("Block(n=%d, p=%d): blocks cover [0,%d), want [0,%d)", n, p, prevHi, n)
			}
		}
	}
	pool := New(3)
	defer pool.Close()
	pool.Run(10, func(w, lo, hi int) {
		blo, bhi := Block(10, w, 3)
		if lo != blo || hi != bhi {
			t.Errorf("Run block (%d,%d) for worker %d != Block result (%d,%d)", lo, hi, w, blo, bhi)
		}
	})
}

// TestSerialPathIsInline: nil pools, 1-worker pools, and n<=1 runs must call
// fn exactly once with the full range on the calling goroutine.
func TestSerialPathIsInline(t *testing.T) {
	for name, p := range map[string]*Pool{"nil": nil, "one": New(1)} {
		calls := 0
		p.Run(10, func(w, lo, hi int) {
			calls++
			if w != 0 || lo != 0 || hi != 10 {
				t.Errorf("%s: got (%d,%d,%d), want (0,0,10)", name, w, lo, hi)
			}
		})
		if calls != 1 {
			t.Errorf("%s: fn called %d times", name, calls)
		}
	}
}

// TestNestedRunInline: a Run issued from inside a worker must execute
// inline (serial semantics) rather than deadlock on the busy pool.
func TestNestedRunInline(t *testing.T) {
	p := New(4)
	defer p.Close()
	var inner int32
	p.Run(4, func(w, lo, hi int) {
		p.Run(8, func(iw, ilo, ihi int) {
			if iw != 0 || ilo != 0 || ihi != 8 {
				t.Errorf("nested run not inline: (%d,%d,%d)", iw, ilo, ihi)
			}
			atomic.AddInt32(&inner, 1)
		})
	})
	if inner != 4 {
		t.Fatalf("inner ran %d times, want 4", inner)
	}
}

// TestRunIsBarrier: all writes issued inside Run are visible after it
// returns, across repeated phases.
func TestRunIsBarrier(t *testing.T) {
	p := New(4)
	defer p.Close()
	buf := make([]int, 1000)
	for phase := 1; phase <= 3; phase++ {
		phase := phase
		p.Run(len(buf), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				buf[i] = phase
			}
		})
		for i, v := range buf {
			if v != phase {
				t.Fatalf("phase %d: buf[%d]=%d", phase, i, v)
			}
		}
	}
}

// TestDeterministicBlocks: the block split for (n, workers) is identical
// across calls.
func TestDeterministicBlocks(t *testing.T) {
	p := New(3)
	defer p.Close()
	record := func() [3][2]int {
		var blocks [3][2]int
		p.Run(10, func(w, lo, hi int) {
			blocks[w] = [2]int{lo, hi}
		})
		return blocks
	}
	a, b := record(), record()
	if a != b {
		t.Fatalf("blocks differ across calls: %v vs %v", a, b)
	}
	if a[0] != [2]int{0, 3} || a[1] != [2]int{3, 6} || a[2] != [2]int{6, 10} {
		t.Fatalf("unexpected static split: %v", a)
	}
}

func BenchmarkRunOverhead(b *testing.B) {
	p := New(4)
	defer p.Close()
	sink := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(len(sink), func(w, lo, hi int) {
			for j := lo; j < hi; j++ {
				sink[j] += 1
			}
		})
	}
}
