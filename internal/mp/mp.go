// Package mp provides the message-passing substrate that FOAM-Go uses in
// place of MPI. It implements the SPMD model of the paper — a fixed set of
// ranks, each with private state, exchanging typed messages — on top of
// goroutines and in-process mailboxes.
//
// Because the reproduction host may have fewer cores than the IBM SP
// partitions the paper ran on (17-68 nodes), mp also acts as a
// parallel-machine simulator. Every rank carries a virtual clock:
//
//   - compute sections (Comm.Compute) run under a global exclusivity token,
//     are wall-clock timed, and advance the local virtual clock by the
//     measured duration;
//   - a message is stamped with the sender's virtual time when sent, and a
//     matching receive advances the receiver's clock to
//     max(own, sender_time + latency + bytes/bandwidth), recording any gap
//     as idle time.
//
// The maximum virtual clock over all ranks is then the wall time the same
// program would have taken on a real distributed-memory machine with the
// given link parameters, including all load-imbalance and synchronization
// effects, which is exactly the quantity the paper's Figure 2 and Section 5
// report.
package mp

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LinkParams models the point-to-point interconnect.
type LinkParams struct {
	// Latency is the per-message latency in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes per second.
	Bandwidth float64
}

// DefaultLink is a conservative contemporary interconnect: 5 microseconds of
// latency and 1 GB/s of bandwidth per link.
var DefaultLink = LinkParams{Latency: 5e-6, Bandwidth: 1e9}

// SPLink approximates the IBM SP2 high-performance switch of the paper's
// era: about 40 microseconds of latency and 35 MB/s per link.
var SPLink = LinkParams{Latency: 40e-6, Bandwidth: 35e6}

// Segment is one contiguous span of a rank's virtual timeline.
type Segment struct {
	Label string  // activity label, e.g. "atmosphere", "ocean", "coupler", "idle"
	Start float64 // virtual seconds
	End   float64 // virtual seconds
}

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	data     []float64
	sendTime float64 // sender's virtual clock at send
}

// mailbox holds undelivered messages for one rank.
type mailbox struct {
	//foam:guards msgs
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// procState is the per-process (world rank) accounting shared by every
// communicator handle of that rank. Only the owning goroutine touches it.
type procState struct {
	clock    float64 // virtual seconds
	segments []Segment
	msgs     int     // messages sent
	bytes    float64 // bytes sent
}

func (p *procState) addSegment(record bool, label string, start, end float64) {
	if !record || end <= start {
		return
	}
	// Merge with the previous segment when the label matches and spans touch.
	if n := len(p.segments); n > 0 {
		last := &p.segments[n-1]
		if last.Label == label && last.End >= start-1e-12 {
			last.End = end
			return
		}
	}
	p.segments = append(p.segments, Segment{Label: label, Start: start, End: end})
}

// World is a set of ranks that can communicate. It corresponds to
// MPI_COMM_WORLD.
type World struct {
	n      int
	link   LinkParams
	boxes  []*mailbox
	procs  []*procState
	token  chan struct{} // exclusivity token for timed compute sections
	scale  float64       // compute time scale factor (1 = measured wall time)
	record bool          // whether to record per-rank segment logs
}

// Option configures a World.
type Option func(*World)

// WithLink sets the interconnect parameters used by the virtual clock.
func WithLink(l LinkParams) Option { return func(w *World) { w.link = l } }

// WithoutTrace disables per-rank segment recording (slightly faster).
func WithoutTrace() Option { return func(w *World) { w.record = false } }

// WithComputeScale multiplies measured compute durations by s before they
// enter the virtual clock. It expresses results in the units of a machine s
// times slower (or faster) than the host; it has no effect on relative
// comparisons.
func WithComputeScale(s float64) Option { return func(w *World) { w.scale = s } }

// NewWorld creates a world of n ranks.
func NewWorld(n int, opts ...Option) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mp: world size %d must be positive", n))
	}
	w := &World{n: n, link: DefaultLink, scale: 1, record: true}
	for _, o := range opts {
		o(w)
	}
	w.boxes = make([]*mailbox, n)
	w.procs = make([]*procState, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.procs[i] = &procState{}
	}
	w.token = make(chan struct{}, 1)
	w.token <- struct{}{}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.n }

// Run executes body on every rank concurrently and returns the per-rank
// world communicators (carrying clocks and traces) after all ranks finish.
// A panic on any rank is re-raised on the caller with rank context.
func (w *World) Run(body func(c *Comm)) []*Comm {
	comms := make([]*Comm, w.n)
	for i := range comms {
		comms[i] = &Comm{world: w, rank: i, size: w.n, ranks: identity(w.n), proc: w.procs[i]}
	}
	var wg sync.WaitGroup
	panics := make([]any, w.n)
	for i := 0; i < w.n; i++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r] = fmt.Errorf("mp: rank %d panicked: %v", r, p)
				}
			}()
			body(comms[r])
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return comms
}

func identity(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Comm is one rank's handle on a communicator: a subset of world ranks with
// contiguous local numbering, like an MPI communicator. All communicators of
// a process share its virtual clock and trace.
type Comm struct {
	world *World
	rank  int   // world rank of this process
	size  int   // size of this communicator
	ranks []int // world ranks of communicator members, indexed by local rank
	proc  *procState
}

// Rank returns the local rank within this communicator.
func (c *Comm) Rank() int {
	for i, r := range c.ranks {
		if r == c.rank {
			return i
		}
	}
	panic("mp: rank not a member of communicator")
}

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return c.size }

// WorldRank returns this process's rank in the world.
func (c *Comm) WorldRank() int { return c.rank }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.proc.clock }

// AdvanceClock adds d virtual seconds of activity labelled label without
// timing anything. It is used by tests and by cost-model experiments.
func (c *Comm) AdvanceClock(label string, d float64) {
	if d < 0 {
		panic("mp: negative clock advance")
	}
	c.proc.addSegment(c.world.record, label, c.proc.clock, c.proc.clock+d)
	c.proc.clock += d
}

// MessagesSent and BytesSent report this rank's traffic counters.
func (c *Comm) MessagesSent() int  { return c.proc.msgs }
func (c *Comm) BytesSent() float64 { return c.proc.bytes }

// Segments returns the rank's virtual timeline.
func (c *Comm) Segments() []Segment { return c.proc.segments }

// Link returns the world's interconnect parameters.
func (c *Comm) Link() LinkParams { return c.world.link }

// Compute runs f under the world's exclusivity token, measures its wall
// duration, and charges it to the rank's virtual clock under label.
// Communication calls must not be made inside f.
func (c *Comm) Compute(label string, f func()) {
	<-c.world.token
	t0 := time.Now()
	func() {
		defer func() { c.world.token <- struct{}{} }()
		f()
	}()
	d := time.Since(t0).Seconds() * c.world.scale
	c.proc.addSegment(c.world.record, label, c.proc.clock, c.proc.clock+d)
	c.proc.clock += d
}

// Exclusive runs f under the world's exclusivity token without charging
// anything to the virtual clock. The traced ranked executor uses it to run
// real model steps one rank at a time — so the wall-clock cost traces the
// step records are not distorted by host-core contention — while the
// virtual time charged for the step comes from a cost model instead.
// Communication calls must not be made inside f.
func (c *Comm) Exclusive(f func()) {
	<-c.world.token
	defer func() { c.world.token <- struct{}{} }()
	f()
}

// Split creates a sub-communicator from the world ranks listed in members,
// which must include the calling rank and be identical on every caller.
// Local ranks follow the order of members.
func (c *Comm) Split(members []int) *Comm {
	cp := make([]int, len(members))
	copy(cp, members)
	return &Comm{world: c.world, rank: c.rank, size: len(cp), ranks: cp, proc: c.proc}
}

// Send delivers data to local rank dst with the given tag. The send is
// eager (buffered): it never blocks.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mp: send to invalid rank %d of %d", dst, c.size))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	box := c.world.boxes[c.ranks[dst]]
	box.mu.Lock()
	box.msgs = append(box.msgs, message{src: c.rank, tag: tag, data: cp, sendTime: c.proc.clock})
	box.mu.Unlock()
	box.cond.Broadcast()
	c.proc.msgs++
	c.proc.bytes += float64(8 * len(data))
}

// Recv blocks until a message from local rank src with the given tag is
// available and returns its payload. The receiver's virtual clock advances
// to account for network transit and any waiting.
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mp: recv from invalid rank %d of %d", src, c.size))
	}
	want := c.ranks[src]
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	var m message
	for {
		found := -1
		for i, cand := range box.msgs {
			if cand.src == want && cand.tag == tag {
				found = i
				break
			}
		}
		if found >= 0 {
			m = box.msgs[found]
			box.msgs = append(box.msgs[:found], box.msgs[found+1:]...)
			break
		}
		box.cond.Wait()
	}
	box.mu.Unlock()

	arrival := m.sendTime + c.world.link.Latency + float64(8*len(m.data))/c.world.link.Bandwidth
	if arrival > c.proc.clock {
		c.proc.addSegment(c.world.record, "idle", c.proc.clock, arrival)
		c.proc.clock = arrival
	}
	return m.data
}

// Sendrecv exchanges messages with two (possibly equal) partners in one
// deadlock-free operation and returns the received payload.
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

const (
	tagBarrier = -(1 << 20)
	tagBcast   = -(2 << 20)
	tagReduce  = -(3 << 20)
	tagGather  = -(4 << 20)
	tagAll2All = -(5 << 20)
	tagScatter = -(6 << 20)
)

// Barrier blocks until every rank in the communicator has entered it. On
// exit all virtual clocks agree (plus network cost of the fan-in/fan-out).
func (c *Comm) Barrier() {
	me := c.Rank()
	if me == 0 {
		for r := 1; r < c.size; r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < c.size; r++ {
			c.Send(r, tagBarrier, nil)
		}
	} else {
		c.Send(0, tagBarrier, nil)
		c.Recv(0, tagBarrier)
	}
}

// Bcast distributes root's data to every rank and returns it. Callers pass
// their local copy (ignored except on root).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	me := c.Rank()
	if me == root {
		for r := 0; r < c.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		return data
	}
	return c.Recv(root, tagBcast)
}

// ReduceOp is a binary associative reduction operator applied elementwise.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines data from all ranks elementwise with op and returns the
// result on root (nil elsewhere).
func (c *Comm) Reduce(root int, op ReduceOp, data []float64) []float64 {
	me := c.Rank()
	if me != root {
		c.Send(root, tagReduce, data)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		part := c.Recv(r, tagReduce)
		if len(part) != len(acc) {
			panic("mp: reduce length mismatch")
		}
		for i := range acc {
			acc[i] = op(acc[i], part[i])
		}
	}
	return acc
}

// Allreduce is Reduce followed by Bcast; every rank gets the result.
func (c *Comm) Allreduce(op ReduceOp, data []float64) []float64 {
	res := c.Reduce(0, op, data)
	return c.Bcast(0, res)
}

// Gather collects equal-length contributions onto root, concatenated in
// rank order. Returns nil on non-root ranks.
func (c *Comm) Gather(root int, data []float64) []float64 {
	me := c.Rank()
	if me != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([]float64, len(data)*c.size)
	copy(out[me*len(data):], data)
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		part := c.Recv(r, tagGather)
		if len(part) != len(data) {
			panic("mp: gather length mismatch")
		}
		copy(out[r*len(data):], part)
	}
	return out
}

// Gatherv collects variable-length contributions onto root; counts gives
// the length contributed by each rank and must agree on all ranks.
func (c *Comm) Gatherv(root int, data []float64, counts []int) []float64 {
	me := c.Rank()
	if len(counts) != c.size {
		panic("mp: gatherv counts length mismatch")
	}
	if len(data) != counts[me] {
		panic("mp: gatherv contribution length mismatch")
	}
	if me != root {
		c.Send(root, tagGather, data)
		return nil
	}
	offs := make([]int, c.size+1)
	for i, n := range counts {
		offs[i+1] = offs[i] + n
	}
	out := make([]float64, offs[c.size])
	copy(out[offs[me]:], data)
	for r := 0; r < c.size; r++ {
		if r == root {
			continue
		}
		part := c.Recv(r, tagGather)
		copy(out[offs[r]:], part)
	}
	return out
}

// Scatterv is the inverse of Gatherv: root distributes slices of data of the
// given counts; every rank returns its own slice.
func (c *Comm) Scatterv(root int, data []float64, counts []int) []float64 {
	me := c.Rank()
	if len(counts) != c.size {
		panic("mp: scatterv counts length mismatch")
	}
	if me == root {
		offs := 0
		var mine []float64
		for r := 0; r < c.size; r++ {
			part := data[offs : offs+counts[r]]
			if r == root {
				mine = append([]float64(nil), part...)
			} else {
				c.Send(r, tagScatter, part)
			}
			offs += counts[r]
		}
		return mine
	}
	return c.Recv(root, tagScatter)
}

// Allgather collects equal-length contributions from all ranks onto all
// ranks, concatenated in rank order.
func (c *Comm) Allgather(data []float64) []float64 {
	out := c.Gather(0, data)
	if c.Rank() != 0 {
		out = nil
	}
	return c.Bcast(0, out)
}

// Allgatherv is the variable-length Allgather.
func (c *Comm) Allgatherv(data []float64, counts []int) []float64 {
	out := c.Gatherv(0, data, counts)
	if c.Rank() != 0 {
		out = nil
	}
	return c.Bcast(0, out)
}

// Alltoall performs a personalized all-to-all exchange: send[i*chunk:(i+1)*chunk]
// goes to rank i, and the returned slice holds what each rank sent to the
// caller, in rank order. All chunks have equal length chunk.
func (c *Comm) Alltoall(send []float64, chunk int) []float64 {
	if len(send) != chunk*c.size {
		panic("mp: alltoall send length mismatch")
	}
	me := c.Rank()
	out := make([]float64, chunk*c.size)
	copy(out[me*chunk:], send[me*chunk:(me+1)*chunk])
	for r := 0; r < c.size; r++ {
		if r == me {
			continue
		}
		c.Send(r, tagAll2All+me, send[r*chunk:(r+1)*chunk])
	}
	for r := 0; r < c.size; r++ {
		if r == me {
			continue
		}
		part := c.Recv(r, tagAll2All+r)
		copy(out[r*chunk:], part)
	}
	return out
}

// Alltoallv is the variable-length personalized exchange. sendCounts[i] is
// the length sent to rank i; recvCounts[i] the length expected from rank i.
func (c *Comm) Alltoallv(send []float64, sendCounts, recvCounts []int) []float64 {
	me := c.Rank()
	if len(sendCounts) != c.size || len(recvCounts) != c.size {
		panic("mp: alltoallv counts length mismatch")
	}
	offs := 0
	var mine []float64
	for r := 0; r < c.size; r++ {
		part := send[offs : offs+sendCounts[r]]
		if r == me {
			mine = part
		} else {
			c.Send(r, tagAll2All+me, part)
		}
		offs += sendCounts[r]
	}
	total := 0
	for _, n := range recvCounts {
		total += n
	}
	out := make([]float64, total)
	offs = 0
	for r := 0; r < c.size; r++ {
		if r == me {
			copy(out[offs:], mine)
		} else {
			part := c.Recv(r, tagAll2All+r)
			if len(part) != recvCounts[r] {
				panic("mp: alltoallv recv length mismatch")
			}
			copy(out[offs:], part)
		}
		offs += recvCounts[r]
	}
	return out
}

// MaxClock returns the largest virtual clock over the given communicators —
// the simulated parallel wall time of the program they ran.
func MaxClock(comms []*Comm) float64 {
	m := 0.0
	for _, c := range comms {
		if c.proc.clock > m {
			m = c.proc.clock
		}
	}
	return m
}

// TotalBusy sums the non-idle virtual time over all ranks, useful for
// computing parallel efficiency.
func TotalBusy(comms []*Comm) float64 {
	tot := 0.0
	for _, c := range comms {
		for _, s := range c.proc.segments {
			if s.Label != "idle" {
				tot += s.End - s.Start
			}
		}
	}
	return tot
}

// Labels returns the sorted set of segment labels appearing in the trace.
func Labels(comms []*Comm) []string {
	set := map[string]bool{}
	for _, c := range comms {
		for _, s := range c.proc.segments {
			set[s.Label] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// AllreduceTree is a recursive-doubling allreduce: log2(P) exchange rounds
// instead of the linear fan-in of Allreduce, the collective structure real
// MPI implementations use. Non-power-of-two sizes fold the excess ranks
// into the nearest power of two first.
func (c *Comm) AllreduceTree(op ReduceOp, data []float64) []float64 {
	me := c.Rank()
	p := c.Size()
	acc := append([]float64(nil), data...)
	// Largest power of two <= p.
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	extra := p - pow
	const tagTree = -(7 << 20)
	// Fold: ranks >= pow send to rank-pow; those receive and combine.
	if me >= pow {
		c.Send(me-pow, tagTree, acc)
		// Wait for the final result.
		res := c.Recv(me-pow, tagTree+1)
		return res
	}
	if me < extra {
		part := c.Recv(me+pow, tagTree)
		combine(op, acc, part)
	}
	// Recursive doubling among [0, pow).
	for dist := 1; dist < pow; dist *= 2 {
		partner := me ^ dist
		part := c.Sendrecv(partner, tagTree+2+dist, acc, partner, tagTree+2+dist)
		combine(op, acc, part)
	}
	if me < extra {
		c.Send(me+pow, tagTree+1, acc)
	}
	return acc
}

func combine(op ReduceOp, acc, part []float64) {
	if len(part) != len(acc) {
		panic("mp: allreduce length mismatch")
	}
	for i := range acc {
		acc[i] = op(acc[i], part[i])
	}
}
