package mp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got = c.Recv(0, 7)
		}
	})
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("recv got %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	var got []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the delivered message
			c.Send(1, 1, nil)
		} else {
			c.Recv(0, 1)
			got = c.Recv(0, 0)
		}
	})
	if got[0] != 42 {
		t.Fatalf("payload mutated after send: %v", got)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2)
	var first, second []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			second = c.Recv(0, 2) // request the later tag first
			first = c.Recv(0, 1)
		}
	})
	if first[0] != 1 || second[0] != 2 {
		t.Fatalf("tag matching broken: %v %v", first, second)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := NewWorld(4)
	comms := w.Run(func(c *Comm) {
		c.AdvanceClock("work", float64(c.Rank())*0.5)
		c.Barrier()
	})
	// After a barrier every rank's clock must be at least the max pre-barrier
	// clock (1.5s here for rank 3).
	for _, c := range comms {
		if c.Clock() < 1.5 {
			t.Fatalf("rank %d clock %v < 1.5 after barrier", c.Rank(), c.Clock())
		}
	}
}

func TestRecvChargesIdleTime(t *testing.T) {
	w := NewWorld(2, WithLink(LinkParams{Latency: 0.25, Bandwidth: 1e12}))
	comms := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.AdvanceClock("work", 2.0)
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
		}
	})
	r1 := comms[1]
	if math.Abs(r1.Clock()-2.25) > 1e-9 {
		t.Fatalf("receiver clock = %v, want 2.25", r1.Clock())
	}
	segs := r1.Segments()
	if len(segs) != 1 || segs[0].Label != "idle" {
		t.Fatalf("expected a single idle segment, got %v", segs)
	}
	if math.Abs(segs[0].End-segs[0].Start-2.25) > 1e-9 {
		t.Fatalf("idle span %v, want 2.25", segs)
	}
}

func TestBandwidthCost(t *testing.T) {
	w := NewWorld(2, WithLink(LinkParams{Latency: 0, Bandwidth: 800}))
	// 100 float64 = 800 bytes = 1 second at 800 B/s.
	comms := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 100))
		} else {
			c.Recv(0, 0)
		}
	})
	if math.Abs(comms[1].Clock()-1.0) > 1e-9 {
		t.Fatalf("receiver clock = %v, want 1.0", comms[1].Clock())
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	results := make([][]float64, 5)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.14, 2.72}
		}
		results[c.Rank()] = c.Bcast(2, data)
	})
	for r, got := range results {
		if !reflect.DeepEqual(got, []float64{3.14, 2.72}) {
			t.Fatalf("rank %d bcast got %v", r, got)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	n := 6
	w := NewWorld(n)
	results := make([][]float64, n)
	w.Run(func(c *Comm) {
		r := float64(c.Rank())
		results[c.Rank()] = c.Allreduce(OpSum, []float64{r, 2 * r})
	})
	want := []float64{15, 30} // sum 0..5, and doubled
	for r, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d allreduce got %v want %v", r, got, want)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	n := 4
	w := NewWorld(n)
	var maxes, mins [][]float64 = make([][]float64, n), make([][]float64, n)
	w.Run(func(c *Comm) {
		v := []float64{float64(c.Rank()) - 1.5}
		maxes[c.Rank()] = c.Allreduce(OpMax, v)
		mins[c.Rank()] = c.Allreduce(OpMin, v)
	})
	for r := 0; r < n; r++ {
		if maxes[r][0] != 1.5 || mins[r][0] != -1.5 {
			t.Fatalf("rank %d max/min got %v %v", r, maxes[r], mins[r])
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	n := 4
	w := NewWorld(n)
	counts := []int{3, 1, 4, 2}
	gathered := make([][]float64, n)
	back := make([][]float64, n)
	w.Run(func(c *Comm) {
		me := c.Rank()
		mine := make([]float64, counts[me])
		for i := range mine {
			mine[i] = float64(me*10 + i)
		}
		g := c.Gatherv(0, mine, counts)
		gathered[me] = g
		back[me] = c.Scatterv(0, g, counts)
	})
	want := []float64{0, 1, 2, 10, 20, 21, 22, 23, 30, 31}
	if !reflect.DeepEqual(gathered[0], want) {
		t.Fatalf("gatherv got %v want %v", gathered[0], want)
	}
	for r := 0; r < n; r++ {
		mine := make([]float64, counts[r])
		for i := range mine {
			mine[i] = float64(r*10 + i)
		}
		if !reflect.DeepEqual(back[r], mine) {
			t.Fatalf("scatterv rank %d got %v want %v", r, back[r], mine)
		}
	}
}

func TestAllgather(t *testing.T) {
	n := 3
	w := NewWorld(n)
	results := make([][]float64, n)
	w.Run(func(c *Comm) {
		results[c.Rank()] = c.Allgather([]float64{float64(c.Rank()), -float64(c.Rank())})
	})
	want := []float64{0, 0, 1, -1, 2, -2}
	for r := 0; r < n; r++ {
		if !reflect.DeepEqual(results[r], want) {
			t.Fatalf("rank %d allgather got %v", r, results[r])
		}
	}
}

func TestAlltoallTransposeIdentity(t *testing.T) {
	// Alltoall applied twice with symmetric chunks is the identity on the
	// "matrix" whose (i,j) block holds data from i destined to j.
	n := 4
	chunk := 2
	w := NewWorld(n)
	results := make([][]float64, n)
	w.Run(func(c *Comm) {
		me := c.Rank()
		send := make([]float64, n*chunk)
		for j := 0; j < n; j++ {
			for k := 0; k < chunk; k++ {
				send[j*chunk+k] = float64(100*me + 10*j + k)
			}
		}
		got := c.Alltoall(send, chunk)
		results[me] = got
	})
	for me := 0; me < n; me++ {
		for j := 0; j < n; j++ {
			for k := 0; k < chunk; k++ {
				want := float64(100*j + 10*me + k)
				if results[me][j*chunk+k] != want {
					t.Fatalf("rank %d slot (%d,%d) = %v want %v",
						me, j, k, results[me][j*chunk+k], want)
				}
			}
		}
	}
}

func TestAlltoallv(t *testing.T) {
	n := 3
	w := NewWorld(n)
	// rank i sends i+1 values to each rank j, all equal to 10i+j.
	results := make([][]float64, n)
	w.Run(func(c *Comm) {
		me := c.Rank()
		sendCounts := make([]int, n)
		recvCounts := make([]int, n)
		var send []float64
		for j := 0; j < n; j++ {
			sendCounts[j] = me + 1
			recvCounts[j] = j + 1
			for k := 0; k < me+1; k++ {
				send = append(send, float64(10*me+j))
			}
		}
		results[me] = c.Alltoallv(send, sendCounts, recvCounts)
	})
	// Rank 0 receives: 1 value 0 from rank0, 2 values 10 from rank1, 3 values 20.
	want0 := []float64{0, 10, 10, 20, 20, 20}
	if !reflect.DeepEqual(results[0], want0) {
		t.Fatalf("alltoallv rank0 got %v want %v", results[0], want0)
	}
}

func TestSplitSubCommunicator(t *testing.T) {
	w := NewWorld(5)
	// Ranks 1,3,4 form a subgroup; check local numbering and a reduction.
	results := make([][]float64, 5)
	w.Run(func(c *Comm) {
		me := c.Rank()
		if me == 1 || me == 3 || me == 4 {
			sub := c.Split([]int{1, 3, 4})
			if sub.Size() != 3 {
				t.Errorf("sub size %d", sub.Size())
			}
			results[me] = sub.Allreduce(OpSum, []float64{float64(me)})
		}
	})
	for _, r := range []int{1, 3, 4} {
		if results[r][0] != 8 {
			t.Fatalf("sub allreduce on %d got %v want 8", r, results[r])
		}
	}
}

func TestSplitSharesClock(t *testing.T) {
	w := NewWorld(2)
	comms := w.Run(func(c *Comm) {
		sub := c.Split([]int{0, 1})
		sub.AdvanceClock("work", 1.0)
		c.AdvanceClock("work", 0.5)
	})
	for _, c := range comms {
		if math.Abs(c.Clock()-1.5) > 1e-12 {
			t.Fatalf("clock not shared across split: %v", c.Clock())
		}
	}
}

func TestComputeAdvancesClockAndTrace(t *testing.T) {
	w := NewWorld(1)
	comms := w.Run(func(c *Comm) {
		c.Compute("atmosphere", func() {
			s := 0.0
			for i := 0; i < 100000; i++ {
				s += float64(i)
			}
			_ = s
		})
	})
	c := comms[0]
	if c.Clock() <= 0 {
		t.Fatal("compute did not advance clock")
	}
	segs := c.Segments()
	if len(segs) != 1 || segs[0].Label != "atmosphere" {
		t.Fatalf("unexpected segments %v", segs)
	}
}

func TestComputeScale(t *testing.T) {
	w := NewWorld(1, WithComputeScale(0))
	comms := w.Run(func(c *Comm) {
		c.Compute("x", func() {})
	})
	if comms[0].Clock() != 0 {
		t.Fatalf("scale 0 should zero compute charges, clock=%v", comms[0].Clock())
	}
}

func TestSegmentsMerge(t *testing.T) {
	w := NewWorld(1)
	comms := w.Run(func(c *Comm) {
		c.AdvanceClock("a", 1)
		c.AdvanceClock("a", 1)
		c.AdvanceClock("b", 1)
	})
	segs := comms[0].Segments()
	if len(segs) != 2 {
		t.Fatalf("adjacent same-label segments should merge: %v", segs)
	}
	if segs[0].Label != "a" || segs[0].End != 2 || segs[1].Label != "b" {
		t.Fatalf("bad merged segments %v", segs)
	}
}

func TestTrafficCounters(t *testing.T) {
	w := NewWorld(2)
	comms := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
			c.Send(1, 1, make([]float64, 5))
		} else {
			c.Recv(0, 0)
			c.Recv(0, 1)
		}
	})
	if comms[0].MessagesSent() != 2 {
		t.Fatalf("messages sent %d", comms[0].MessagesSent())
	}
	if comms[0].BytesSent() != 8*15 {
		t.Fatalf("bytes sent %v", comms[0].BytesSent())
	}
}

func TestMaxClockAndBusy(t *testing.T) {
	w := NewWorld(3)
	comms := w.Run(func(c *Comm) {
		c.AdvanceClock("w", float64(c.Rank()+1))
	})
	if got := MaxClock(comms); got != 3 {
		t.Fatalf("MaxClock=%v", got)
	}
	if got := TotalBusy(comms); got != 6 {
		t.Fatalf("TotalBusy=%v", got)
	}
	labels := Labels(comms)
	if !reflect.DeepEqual(labels, []string{"w"}) {
		t.Fatalf("labels %v", labels)
	}
}

func TestRunPanicsArePropagated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

// Property: Allreduce(OpSum) equals the serial sum of all contributions, for
// random world sizes and payloads.
func TestAllreduceMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		ln := 1 + rng.Intn(20)
		data := make([][]float64, n)
		want := make([]float64, ln)
		for r := 0; r < n; r++ {
			data[r] = make([]float64, ln)
			for i := range data[r] {
				data[r][i] = rng.NormFloat64()
				want[i] += data[r][i]
			}
		}
		w := NewWorld(n)
		results := make([][]float64, n)
		w.Run(func(c *Comm) {
			results[c.Rank()] = c.Allreduce(OpSum, data[c.Rank()])
		})
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Abs(results[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a ring halo exchange is deadlock-free and delivers each
// neighbour's payload for any ring size.
func TestRingExchangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		w := NewWorld(n)
		ok := true
		w.Run(func(c *Comm) {
			me := c.Rank()
			right := (me + 1) % n
			left := (me - 1 + n) % n
			got := c.Sendrecv(right, 10, []float64{float64(me)}, left, 10)
			if int(got[0]) != left {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceTreeMatchesLinear(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		w := NewWorld(n)
		got := make([][]float64, n)
		w.Run(func(c *Comm) {
			r := float64(c.Rank())
			got[c.Rank()] = c.AllreduceTree(OpSum, []float64{r, r * r, 1})
		})
		wantSum := 0.0
		wantSq := 0.0
		for r := 0; r < n; r++ {
			wantSum += float64(r)
			wantSq += float64(r * r)
		}
		for r := 0; r < n; r++ {
			if math.Abs(got[r][0]-wantSum) > 1e-12 ||
				math.Abs(got[r][1]-wantSq) > 1e-12 ||
				got[r][2] != float64(n) {
				t.Fatalf("n=%d rank %d: %v (want sum %v sq %v count %d)",
					n, r, got[r], wantSum, wantSq, n)
			}
		}
	}
}

func TestAllreduceTreeMaxOp(t *testing.T) {
	n := 6
	w := NewWorld(n)
	got := make([][]float64, n)
	w.Run(func(c *Comm) {
		got[c.Rank()] = c.AllreduceTree(OpMax, []float64{float64(c.Rank() * 7 % 5)})
	})
	want := 0.0
	for r := 0; r < n; r++ {
		if v := float64(r * 7 % 5); v > want {
			want = v
		}
	}
	for r := 0; r < n; r++ {
		if got[r][0] != want {
			t.Fatalf("rank %d max %v want %v", r, got[r][0], want)
		}
	}
}
