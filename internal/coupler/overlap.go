// Package coupler implements the FOAM coupler: the model of the land
// surface and atmosphere-ocean interface that computes all surface fluxes,
// organizes the exchange between the component models, and routes
// continental runoff through the river model to close the hydrological
// cycle (paper Section 4.3).
//
// Fluxes between the two grids use the paper's overlap-grid construction
// (Figure 1): the atmosphere and ocean grids are overlaid, every
// intersection rectangle is a flux cell computed once from both sides'
// states, and the results are area-averaged back to each grid. No state
// variable is ever interpolated to a single grid, and the exchange is
// conservative by construction.
//
//foam:deterministic
package coupler

import (
	"math"
	"sort"

	"foam/internal/sphere"
)

// OverlapCell is one rectangle of the overlap decomposition.
type OverlapCell struct {
	Atm  int     // atmosphere cell index
	Ocn  int     // ocean cell index, or -1 outside the ocean grid
	Area float64 // m^2
}

// Overlap is the full overlap decomposition plus the per-cell area sums
// needed for averaging.
//
//foam:sharedro
type Overlap struct {
	Cells   []OverlapCell
	AtmArea []float64 // total overlap area per atm cell (ocean-covered part)
	OcnArea []float64 // total overlap area per ocn cell
	atmGrid *sphere.Grid
	ocnGrid *sphere.Grid
}

// BuildOverlap constructs the overlap decomposition of two lat-lon grids.
// Latitude bands outside the ocean grid produce cells with Ocn = -1.
func BuildOverlap(atm, ocn *sphere.Grid) *Overlap {
	ov := &Overlap{
		AtmArea: make([]float64, atm.Size()),
		OcnArea: make([]float64, ocn.Size()),
		atmGrid: atm, ocnGrid: ocn,
	}
	// Merged latitude breakpoints.
	lats := mergeBreaks(atm.LatEdges, ocn.LatEdges, false)
	// Merged longitude breakpoints on [0, 2*pi).
	lons := mergeBreaks(normalizeLons(atm.LonEdges), normalizeLons(ocn.LonEdges), true)

	for bi := 0; bi+1 < len(lats); bi++ {
		lat0, lat1 := lats[bi], lats[bi+1]
		if lat1-lat0 < 1e-12 {
			continue
		}
		latMid := 0.5 * (lat0 + lat1)
		ja := findBand(atm.LatEdges, latMid)
		if ja < 0 {
			continue
		}
		jo := findBand(ocn.LatEdges, latMid)
		band := sphere.Radius * sphere.Radius * (math.Sin(lat1) - math.Sin(lat0))
		for li := 0; li+1 < len(lons); li++ {
			lon0, lon1 := lons[li], lons[li+1]
			width := lon1 - lon0
			if width < 1e-12 {
				continue
			}
			lonMid := 0.5 * (lon0 + lon1)
			ia := findLonBand(atm.LonEdges, lonMid)
			if ia < 0 {
				continue
			}
			cell := OverlapCell{Atm: atm.Index(ja, ia), Ocn: -1, Area: band * width}
			if jo >= 0 {
				io := findLonBand(ocn.LonEdges, lonMid)
				if io >= 0 {
					cell.Ocn = ocn.Index(jo, io)
				}
			}
			if cell.Ocn >= 0 {
				ov.AtmArea[cell.Atm] += cell.Area
				ov.OcnArea[cell.Ocn] += cell.Area
			}
			ov.Cells = append(ov.Cells, cell)
		}
	}
	return ov
}

// mergeBreaks merges two ascending breakpoint sets, deduplicating. For
// longitudes (periodic=true) the values must already be normalized to
// [0, 2*pi) and 0 and 2*pi are added as breakpoints.
func mergeBreaks(a, b []float64, periodic bool) []float64 {
	out := make([]float64, 0, len(a)+len(b)+2)
	out = append(out, a...)
	out = append(out, b...)
	if periodic {
		out = append(out, 0, 2*math.Pi)
	}
	sort.Float64s(out)
	ded := out[:0]
	for i, v := range out {
		if i == 0 || v-ded[len(ded)-1] > 1e-12 {
			ded = append(ded, v)
		}
	}
	return ded
}

// normalizeLons maps longitude edges into [0, 2*pi) as breakpoints.
func normalizeLons(edges []float64) []float64 {
	out := make([]float64, 0, len(edges))
	for _, e := range edges {
		out = append(out, sphere.WrapLon(e))
	}
	return out
}

// findBand locates the interval [edges[k], edges[k+1]) containing x, or -1.
func findBand(edges []float64, x float64) int {
	if x < edges[0] || x >= edges[len(edges)-1] {
		return -1
	}
	k := sort.SearchFloat64s(edges, x) - 1
	if k < 0 {
		k = 0
	}
	return k
}

// findLonBand locates the (periodic) longitude band containing x in
// [0, 2*pi).
func findLonBand(edges []float64, x float64) int {
	n := len(edges) - 1 // number of cells
	first := edges[0]
	rel := sphere.WrapLon(x - first)
	width := 2 * math.Pi / float64(n)
	k := int(rel / width)
	if k >= n {
		k = n - 1
	}
	return k
}

// AtmToOcn conservatively remaps an atmosphere-grid flux field (per unit
// area) to the ocean grid: each ocean cell receives the overlap-area-
// weighted average of the contributing atmosphere values.
func (ov *Overlap) AtmToOcn(field []float64) []float64 {
	out := make([]float64, ov.ocnGrid.Size())
	ov.AtmToOcnInto(out, field)
	return out
}

// AtmToOcnInto writes the remap into dst.
//
//foam:hotpath
func (ov *Overlap) AtmToOcnInto(dst, field []float64) {
	for c := range dst {
		dst[c] = 0
	}
	for _, cell := range ov.Cells {
		if cell.Ocn < 0 || ov.OcnArea[cell.Ocn] <= 0 {
			continue
		}
		dst[cell.Ocn] += field[cell.Atm] * cell.Area / ov.OcnArea[cell.Ocn]
	}
}

// OcnToAtm conservatively remaps an ocean-grid field to the atmosphere
// grid, averaging over the ocean-covered part of each atmosphere cell.
// Atmosphere cells with no ocean overlap get 0.
func (ov *Overlap) OcnToAtm(field []float64) []float64 {
	out := make([]float64, ov.atmGrid.Size())
	for _, cell := range ov.Cells {
		if cell.Ocn < 0 || ov.AtmArea[cell.Atm] <= 0 {
			continue
		}
		out[cell.Atm] += field[cell.Ocn] * cell.Area / ov.AtmArea[cell.Atm]
	}
	return out
}

// OceanFraction returns, per atmosphere cell, the fraction of its area
// overlapped by wet ocean cells (mask: 1 = wet).
func (ov *Overlap) OceanFraction(ocnMask []float64) []float64 {
	out := make([]float64, ov.atmGrid.Size())
	for _, cell := range ov.Cells {
		if cell.Ocn < 0 {
			continue
		}
		if ocnMask[cell.Ocn] > 0 {
			out[cell.Atm] += cell.Area
		}
	}
	g := ov.atmGrid
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			c := g.Index(j, i)
			out[c] /= g.Area(j, i)
			if out[c] > 1 {
				out[c] = 1
			}
		}
	}
	return out
}
