package coupler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"foam/internal/sphere"
)

func grids() (*sphere.Grid, *sphere.Grid) {
	atm := sphere.NewGaussianGrid(16, 24)
	ocn := sphere.NewMercatorGrid(32, 32, -72, 72)
	return atm, ocn
}

// Every overlap cell must lie inside exactly one atm cell and (when Ocn >= 0)
// one ocean cell, and the per-cell area sums must reconstruct the cell areas.
func TestOverlapAreasReconstructCells(t *testing.T) {
	atm, ocn := grids()
	ov := BuildOverlap(atm, ocn)
	// Ocean cells: total overlap area equals the ocean cell area.
	perOcn := make([]float64, ocn.Size())
	perAtm := make([]float64, atm.Size())
	for _, c := range ov.Cells {
		if c.Area <= 0 {
			t.Fatalf("nonpositive overlap area %v", c.Area)
		}
		perAtm[c.Atm] += c.Area
		if c.Ocn >= 0 {
			perOcn[c.Ocn] += c.Area
		}
	}
	for j := 0; j < ocn.NLat(); j++ {
		for i := 0; i < ocn.NLon(); i++ {
			c := ocn.Index(j, i)
			want := ocn.Area(j, i)
			if math.Abs(perOcn[c]-want)/want > 1e-9 {
				t.Fatalf("ocean cell %d overlap area %v want %v", c, perOcn[c], want)
			}
		}
	}
	// Atmosphere cells: overlap pieces (including Ocn = -1 pieces outside
	// the ocean grid) tile the whole cell.
	for j := 0; j < atm.NLat(); j++ {
		for i := 0; i < atm.NLon(); i++ {
			c := atm.Index(j, i)
			want := atm.Area(j, i)
			if math.Abs(perAtm[c]-want)/want > 1e-9 {
				t.Fatalf("atm cell %d overlap area %v want %v", c, perAtm[c], want)
			}
		}
	}
}

// Conservative remap: the area integral of a flux is identical on both
// grids (the paper's central claim for the overlap scheme).
func TestRemapConservesIntegrals(t *testing.T) {
	atm, ocn := grids()
	ov := BuildOverlap(atm, ocn)
	rng := rand.New(rand.NewSource(4))
	field := make([]float64, atm.Size())
	for c := range field {
		field[c] = rng.NormFloat64()
	}
	out := ov.AtmToOcn(field)
	// Integral over the ocean grid must equal the integral of the source
	// over the ocean-covered parts of the atm grid.
	var atmInt, ocnInt float64
	for _, cell := range ov.Cells {
		if cell.Ocn >= 0 {
			atmInt += field[cell.Atm] * cell.Area
		}
	}
	for j := 0; j < ocn.NLat(); j++ {
		for i := 0; i < ocn.NLon(); i++ {
			ocnInt += out[ocn.Index(j, i)] * ocn.Area(j, i)
		}
	}
	if math.Abs(atmInt-ocnInt) > 1e-6*math.Abs(atmInt) {
		t.Fatalf("AtmToOcn not conservative: %v vs %v", atmInt, ocnInt)
	}
}

// A constant field remaps to the same constant in both directions.
func TestRemapPreservesConstants(t *testing.T) {
	atm, ocn := grids()
	ov := BuildOverlap(atm, ocn)
	cf := make([]float64, atm.Size())
	for i := range cf {
		cf[i] = 7.25
	}
	out := ov.AtmToOcn(cf)
	for c, v := range out {
		if ov.OcnArea[c] > 0 && math.Abs(v-7.25) > 1e-9 {
			t.Fatalf("constant not preserved atm->ocn at %d: %v", c, v)
		}
	}
	cf2 := make([]float64, ocn.Size())
	for i := range cf2 {
		cf2[i] = -3.5
	}
	back := ov.OcnToAtm(cf2)
	for c, v := range back {
		if ov.AtmArea[c] > 0 && math.Abs(v+3.5) > 1e-9 {
			t.Fatalf("constant not preserved ocn->atm at %d: %v", c, v)
		}
	}
}

func TestOceanFractionBounds(t *testing.T) {
	atm, ocn := grids()
	ov := BuildOverlap(atm, ocn)
	mask := make([]float64, ocn.Size())
	for c := range mask {
		mask[c] = 1
	}
	frac := ov.OceanFraction(mask)
	for c, f := range frac {
		if f < 0 || f > 1 {
			t.Fatalf("fraction out of bounds at %d: %v", c, f)
		}
	}
	// With an all-wet ocean, atm cells well inside the ocean latitude band
	// must be fully covered.
	g := atm
	for j := 0; j < g.NLat(); j++ {
		lat := g.Lats[j] * sphere.Rad2Deg
		if lat > -60 && lat < 60 {
			for i := 0; i < g.NLon(); i++ {
				if f := frac[g.Index(j, i)]; f < 0.999 {
					t.Fatalf("interior atm cell (%d,%d) fraction %v", j, i, f)
				}
			}
		}
	}
	// Zero mask -> zero fraction.
	zero := ov.OceanFraction(make([]float64, ocn.Size()))
	for c, f := range zero {
		if f != 0 {
			t.Fatalf("zero mask gave fraction %v at %d", f, c)
		}
	}
}

// Property: remap conservation holds for random grid shapes.
func TestRemapConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		atm := sphere.NewGaussianGrid(8+2*rng.Intn(6), 12+2*rng.Intn(8))
		ocn := sphere.NewMercatorGrid(10+2*rng.Intn(10), 16+2*rng.Intn(8), -70, 70)
		ov := BuildOverlap(atm, ocn)
		field := make([]float64, atm.Size())
		for c := range field {
			field[c] = rng.NormFloat64()
		}
		out := ov.AtmToOcn(field)
		var a, o float64
		for _, cell := range ov.Cells {
			if cell.Ocn >= 0 {
				a += field[cell.Atm] * cell.Area
			}
		}
		for j := 0; j < ocn.NLat(); j++ {
			for i := 0; i < ocn.NLon(); i++ {
				o += out[ocn.Index(j, i)] * ocn.Area(j, i)
			}
		}
		return math.Abs(a-o) <= 1e-6*(math.Abs(a)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
