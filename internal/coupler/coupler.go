package coupler

import (
	"math"

	"foam/internal/atmos"
	"foam/internal/data"
	"foam/internal/land"
	"foam/internal/ocean"
	"foam/internal/pool"
	"foam/internal/river"
	"foam/internal/seaice"
	"foam/internal/sphere"
)

// Coupler wires the atmosphere to the surface: land model, river routing,
// sea ice, and the ocean through the overlap grid. It implements
// atmos.Boundary, accumulates the atmosphere-side forcing for the ocean
// between the 6-hour ocean calls, and redistributes the ocean's state back.
type Coupler struct {
	AtmGrid *sphere.Grid
	OcnGrid *sphere.Grid
	Overlap *Overlap

	Land  *land.Model
	River *river.Model
	Ice   *seaice.Model

	// landFrac is the land fraction per atmosphere cell (1 = all land).
	landFrac []float64
	//foam:units wetAtmArea=m^2
	// wetAtmArea is the wet-ocean overlap area per atmosphere cell, m^2.
	wetAtmArea []float64

	// Ocean-side state mirrored on the ocean grid (refreshed by AbsorbOcean
	// or, in the message-passing configuration, by received messages).
	//foam:units sstC=degC
	sstC    []float64 // deg C
	ocnMask []float64
	//foam:units iceForm=kg/m^2/s
	iceForm []float64 // kg/m^2/s freezing flux from the ocean clamp

	// Forcing accumulators on the ocean grid (averaged over the atmosphere
	// steps between ocean calls).
	//foam:units accTauX=N/m^2 accTauY=N/m^2
	accTauX, accTauY []float64
	//foam:units accHeat=W/m^2 accFW=kg/m^2/s
	accHeat, accFW []float64
	accSteps       int

	//foam:units accRunoff=kg/m^2/s
	// Runoff accumulator on the atmosphere grid.
	accRunoff []float64

	// Ocean-grid metrics for ice drift (lazy).
	//foam:units ocnDx=m ocnDy=m
	ocnDx, ocnDy, ocnCos []float64

	// Scratch. The buffers below are reused every Exchange/DrainOceanForcing
	// call so the steady-state coupled step allocates nothing.
	exch        *atmos.SurfaceExchange
	atmOnOcn    lowestOnOcn
	waterBudget WaterBudget
	runoffNow   []float64
	iceOut      []*seaice.Output // nil where no ice; points into iceOutBuf
	iceOutBuf   []seaice.Output
	drainF      *ocean.Forcing // returned by DrainOceanForcing, overwritten next call
	meanRunoff  []float64
	riverOnOcn  []float64

	// Shared-memory parallel flux computation (nil = serial). pieces holds
	// one pre-weighted flux result per overlap piece; the accumulation into
	// the atmosphere/ocean arrays stays serial in piece order so the sums
	// are bit-identical to the serial loop. phFlux is bound once in SetPool
	// (a closure literal per Exchange would allocate every step); exIn stages
	// its per-call input.
	pool   pool.Runner
	pieces []pieceFlux
	exIn   *atmos.LowestLevel
	phFlux func(w, p0, p1 int)
}

// pieceFlux is the flux contribution of one overlap piece, already
// multiplied by its area weights.
type pieceFlux struct {
	ok bool // piece is wet and contributes
	//foam:units tsurf=K taux=N/m^2 tauy=N/m^2 sens=W/m^2 evap=kg/m^2/s
	tsurf, albedo, taux, tauy, sens, evap float64
	//foam:units otx=N/m^2 oty=N/m^2 oheat=W/m^2 ofw=kg/m^2/s
	otx, oty, oheat, ofw float64
}

// lowestOnOcn holds atmosphere lowest-level state remapped to the ocean
// grid, used to drive the per-ocean-cell sea ice model.
type lowestOnOcn struct {
	//foam:units T=K U=m/s V=m/s Ps=Pa Z=m SW=W/m^2 LW=W/m^2 Snow=kg/m^2/s
	T, Q, U, V, Ps, Z, SW, LW, Snow []float64
}

// WaterBudget tracks the global hydrological cycle for closure tests
// (experiment E9). All terms are kg accumulated since Reset.
type WaterBudget struct {
	//foam:units Precip=kg Evap=kg
	Precip, Evap float64 // over land
	//foam:units Runoff=kg
	Runoff float64 // land -> rivers
	//foam:units RiverToOcean=kg
	RiverToOcean float64 // rivers -> ocean
}

// New builds a coupler for the given grids using the synthetic Earth for
// masks, soils and river directions. ocnMask/kmt come from the ocean model.
func New(atmGrid, ocnGrid *sphere.Grid, ocnMask []float64) *Coupler {
	return NewShared(atmGrid, ocnGrid, ocnMask, Shared{})
}

// Shared carries prebuilt immutable inputs a coupler may adopt instead of
// rebuilding: the conservative overlap remap between the two grids, the
// river-routing network on the atmosphere grid, and the world's land mask
// and soil classification on the atmosphere grid. All are read-only after
// construction, so any number of couplers (one per ensemble member) may
// hold the same instances. Any field may be nil to build fresh from the
// synthetic Earth.
type Shared struct {
	Overlap *Overlap
	Rivers  *data.RiverNetwork
	Land    []bool // land mask at atmosphere cell centers
	Soil    []int  // soil classes at atmosphere cell centers
}

// NewShared builds a coupler over prebuilt shared tables (see Shared). The
// caller must have built them on these same grids.
func NewShared(atmGrid, ocnGrid *sphere.Grid, ocnMask []float64, sh Shared) *Coupler {
	cp := &Coupler{AtmGrid: atmGrid, OcnGrid: ocnGrid, pool: pool.Serial}
	if sh.Overlap != nil {
		cp.Overlap = sh.Overlap
	} else {
		cp.Overlap = BuildOverlap(atmGrid, ocnGrid)
	}
	cp.ocnMask = append([]float64(nil), ocnMask...)
	cp.initOcnGeometry()

	// Land cells on the atmosphere grid: the world's land, plus any cell
	// with no wet-ocean overlap (polar caps beyond the ocean domain become
	// ice-type land, standing in for the crude Arctic treatment the paper
	// acknowledges).
	oceanFrac := cp.Overlap.OceanFraction(cp.ocnMask)
	n := atmGrid.Size()
	mask := make([]bool, n)
	var types []int
	if sh.Soil != nil {
		// The polar-cap override below mutates the slice; never write
		// through to a shared table.
		types = append([]int(nil), sh.Soil...)
	} else {
		types = data.SoilTypes(atmGrid)
	}
	worldLand := sh.Land
	if worldLand == nil {
		worldLand = data.LandMask(atmGrid)
	}
	cp.landFrac = make([]float64, n)
	for j := 0; j < atmGrid.NLat(); j++ {
		for i := 0; i < atmGrid.NLon(); i++ {
			c := atmGrid.Index(j, i)
			cp.landFrac[c] = 1 - oceanFrac[c]
			isLand := worldLand[c]
			if isLand {
				cp.landFrac[c] = math.Max(cp.landFrac[c], 0.5)
			}
			if cp.landFrac[c] > 0.01 {
				mask[c] = true
				if !isLand && math.Abs(atmGrid.Lats[j]) > 66*sphere.Deg2Rad {
					types[c] = data.SoilIce // polar cap beyond the ocean grid
				}
			}
		}
	}
	cp.Land = land.New(atmGrid, types, mask)
	net := sh.Rivers
	if net == nil {
		net = data.BuildRivers(atmGrid)
	}
	cp.River = river.New(net)
	cp.Ice = seaice.New(ocnGrid.Size())

	// Wet overlap area per atmosphere cell, for ocean-piece weights.
	cp.wetAtmArea = make([]float64, n)
	for _, piece := range cp.Overlap.Cells {
		if piece.Ocn >= 0 && cp.ocnMask[piece.Ocn] > 0 {
			cp.wetAtmArea[piece.Atm] += piece.Area
		}
	}

	cp.sstC = make([]float64, ocnGrid.Size())
	for c := range cp.sstC {
		cp.sstC[c] = 15
	}
	cp.iceForm = make([]float64, ocnGrid.Size())
	cp.accTauX = make([]float64, ocnGrid.Size())
	cp.accTauY = make([]float64, ocnGrid.Size())
	cp.accHeat = make([]float64, ocnGrid.Size())
	cp.accFW = make([]float64, ocnGrid.Size())
	cp.accRunoff = make([]float64, n)
	cp.exch = atmos.NewSurfaceExchange(n)
	m := ocnGrid.Size()
	cp.runoffNow = make([]float64, n)
	cp.iceOut = make([]*seaice.Output, m)
	cp.iceOutBuf = make([]seaice.Output, m)
	cp.drainF = ocean.NewForcing(m)
	cp.meanRunoff = make([]float64, n)
	cp.riverOnOcn = make([]float64, m)
	cp.atmOnOcn = lowestOnOcn{
		T: make([]float64, m), Q: make([]float64, m), U: make([]float64, m),
		V: make([]float64, m), Ps: make([]float64, m), Z: make([]float64, m),
		SW: make([]float64, m), LW: make([]float64, m), Snow: make([]float64, m),
	}
	return cp
}

// SetPool attaches a Runner used to parallelize the per-overlap-piece
// flux computation. The result is bit-identical to the serial loop: fluxes
// are computed concurrently into per-piece slots, then accumulated serially
// in piece order. Pass nil to return to the serial loop.
//
//foam:hotphases
func (cp *Coupler) SetPool(p pool.Runner) {
	if p == nil {
		p = pool.Serial
	}
	cp.pool = p
	cp.pieces = nil
	cp.phFlux = nil
	if p.Workers() > 1 {
		cp.pieces = make([]pieceFlux, len(cp.Overlap.Cells))
		cells := cp.Overlap.Cells
		cp.phFlux = func(_, p0, p1 int) {
			for pi := p0; pi < p1; pi++ {
				cp.pieces[pi] = cp.computePieceFlux(&cells[pi], cp.exIn, cp.iceOut)
			}
		}
	}
}

// LandFraction returns the per-atm-cell land fraction.
func (cp *Coupler) LandFraction() []float64 { return cp.landFrac }

// SetSST installs the ocean surface temperature (deg C, ocean grid) used
// for flux computation until the next update.
func (cp *Coupler) SetSST(sst []float64) { copy(cp.sstC, sst) }

// SetIceFormation installs the ocean's freezing flux diagnostic.
func (cp *Coupler) SetIceFormation(fl []float64) { copy(cp.iceForm, fl) }

// AbsorbOcean refreshes the mirrored ocean state from a local ocean model.
//
//foam:hotpath
func (cp *Coupler) AbsorbOcean(oc *ocean.Model) {
	cp.SetSST(oc.SST())
	cp.SetIceFormation(oc.IceFormation())
}

// AdvectIce drifts the sea ice with the ocean surface currents over one
// coupling interval (free drift; the dynamic extension the paper flags as
// future work).
//
//foam:hotpath
func (cp *Coupler) AdvectIce(u, v []float64, dt float64) {
	g := cp.OcnGrid
	cp.Ice.Advect(u, v, cp.ocnMask, cp.ocnDx, cp.ocnDy, cp.ocnCos, g.NLat(), g.NLon(), dt)
}

// initOcnGeometry precomputes the per-row ocean-grid spacings the ice
// drift uses, once, at construction.
//
//foam:coldpath
func (cp *Coupler) initOcnGeometry() {
	g := cp.OcnGrid
	nlat, nlon := g.NLat(), g.NLon()
	cp.ocnDx = make([]float64, nlat)
	cp.ocnDy = make([]float64, nlat)
	cp.ocnCos = make([]float64, nlat)
	dlon := 2 * math.Pi / float64(nlon)
	for j := 0; j < nlat; j++ {
		cp.ocnCos[j] = math.Cos(g.Lats[j])
		cp.ocnDx[j] = sphere.Radius * cp.ocnCos[j] * dlon
		switch {
		case j == 0:
			cp.ocnDy[j] = sphere.Radius * (g.Lats[1] - g.Lats[0])
		case j == nlat-1:
			cp.ocnDy[j] = sphere.Radius * (g.Lats[j] - g.Lats[j-1])
		default:
			cp.ocnDy[j] = sphere.Radius * 0.5 * (g.Lats[j+1] - g.Lats[j-1])
		}
	}
}

// Budget returns the accumulated water budget terms.
func (cp *Coupler) Budget() WaterBudget { return cp.waterBudget }

// ResetBudget zeroes the accumulated water budget.
func (cp *Coupler) ResetBudget() { cp.waterBudget = WaterBudget{} }

// Exchange implements atmos.Boundary: one atmosphere-step surface exchange.
//
//foam:hotpath
func (cp *Coupler) Exchange(in *atmos.LowestLevel, dt float64) *atmos.SurfaceExchange {
	g := cp.AtmGrid
	ex := cp.exch
	n := g.Size()
	// Zero the composite outputs.
	for c := 0; c < n; c++ {
		ex.TSurf[c] = 0
		ex.Albedo[c] = 0
		ex.TauX[c] = 0
		ex.TauY[c] = 0
		ex.Sensible[c] = 0
		ex.Evap[c] = 0
	}

	// --- Land fraction of every land-flagged cell.
	runoffNow := cp.runoffNow
	for c := range runoffNow {
		runoffNow[c] = 0
	}
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			c := g.Index(j, i)
			if !cp.Land.IsLand(c) {
				continue
			}
			lin := land.Input{
				SWDown: in.SWDown[c], LWDown: in.LWDown[c],
				TAir: in.T[c], QAir: in.Q[c], UAir: in.U[c], VAir: in.V[c],
				Ps: in.Ps[c], ZRef: in.Z[c],
				Rain: in.RainRate[c], Snowfall: in.SnowRate[c],
			}
			lo := cp.Land.Step(c, lin, dt)
			w := cp.landFrac[c]
			ex.TSurf[c] += w * lo.TSurf
			ex.Albedo[c] += w * lo.Albedo
			ex.TauX[c] += w * lo.TauX
			ex.TauY[c] += w * lo.TauY
			ex.Sensible[c] += w * lo.Sensible
			ex.Evap[c] += w * lo.Evap
			runoffNow[c] = (lo.Runoff + lo.SnowShed) * w
			area := g.Area(j, i)
			cp.waterBudget.Precip += (in.RainRate[c] + in.SnowRate[c]) * w * area * dt
			cp.waterBudget.Evap += lo.Evap * w * area * dt
			cp.waterBudget.Runoff += runoffNow[c] * area * dt
		}
	}
	for c := 0; c < n; c++ {
		cp.accRunoff[c] += runoffNow[c]
	}

	// --- Sea ice on the ocean grid: remap the atmospheric state once.
	cp.remapLowest(in)
	iceOut := cp.iceOut
	for oc := range iceOut {
		iceOut[oc] = nil
	}
	for oc := 0; oc < cp.OcnGrid.Size(); oc++ {
		if cp.ocnMask[oc] < 0.5 {
			continue
		}
		if cp.Ice.Present(oc) || cp.iceForm[oc] > 0 {
			iin := seaice.Input{
				SWDown: cp.atmOnOcn.SW[oc], LWDown: cp.atmOnOcn.LW[oc],
				TAir: cp.atmOnOcn.T[oc], QAir: cp.atmOnOcn.Q[oc],
				UAir: cp.atmOnOcn.U[oc], VAir: cp.atmOnOcn.V[oc],
				Ps: cp.atmOnOcn.Ps[oc], ZRef: cp.atmOnOcn.Z[oc],
				Snowfall:    cp.atmOnOcn.Snow[oc],
				OceanFreeze: cp.iceForm[oc],
			}
			out := cp.Ice.Step(oc, iin, dt)
			melt := cp.Ice.BasalMelt(oc, cp.sstC[oc], dt)
			out.MeltWater += melt
			cp.iceOutBuf[oc] = out
			iceOut[oc] = &cp.iceOutBuf[oc]
		}
	}

	// --- Per-overlap-piece air-sea fluxes (the paper's Figure 1 scheme).
	// Each piece's pre-weighted flux is independent of every other piece,
	// so the computation parallelizes; the accumulation runs serially in
	// piece order either way, keeping the sums bit-identical.
	cells := cp.Overlap.Cells
	if cp.pieces != nil {
		cp.exIn = in
		cp.pool.Run(len(cells), cp.phFlux)
		cp.exIn = nil
		for pi := range cells {
			cp.accumulatePiece(&cells[pi], &cp.pieces[pi], ex)
		}
	} else {
		for pi := range cells {
			pf := cp.computePieceFlux(&cells[pi], in, iceOut)
			cp.accumulatePiece(&cells[pi], &pf, ex)
		}
	}
	cp.accSteps++

	// Normalize mixed cells: where land covered only part of the area the
	// weights already sum to one; ensure surface temperature is sane where
	// nothing contributed (should not happen).
	for c := 0; c < n; c++ {
		if ex.TSurf[c] <= 0 {
			ex.TSurf[c] = 273
			ex.Albedo[c] = 0.3
		}
	}
	return ex
}

// computePieceFlux evaluates one overlap piece's air-sea fluxes, returning
// them pre-multiplied by the piece's area weights. It only reads shared
// state, so pieces can be computed concurrently.
func (cp *Coupler) computePieceFlux(piece *OverlapCell, in *atmos.LowestLevel, iceOut []*seaice.Output) pieceFlux {
	oc := piece.Ocn
	if oc < 0 || cp.ocnMask[oc] < 0.5 {
		return pieceFlux{}
	}
	a := piece.Atm
	if cp.wetAtmArea[a] <= 0 {
		return pieceFlux{}
	}
	wAtm := piece.Area / cp.wetAtmArea[a] * (1 - cp.landFrac[a])
	wOcn := piece.Area / cp.Overlap.OcnArea[oc]
	if io := iceOut[oc]; io != nil && cp.Ice.Present(oc) {
		// Ice-covered piece: the ice model already produced fluxes. The
		// ocean's freeze clamp accounted for the latent heat and brine of
		// formation internally; only melt water and conduction cross here.
		return pieceFlux{
			ok:    true,
			tsurf: wAtm * io.TSurf, albedo: wAtm * io.Albedo,
			taux: wAtm * io.TauXAtm, tauy: wAtm * io.TauYAtm,
			sens: wAtm * io.Sensible, evap: wAtm * io.Evap,
			otx: wOcn * io.TauXOcean, oty: wOcn * io.TauYOcean,
			oheat: wOcn * io.OceanHeat, ofw: wOcn * io.MeltWater,
		}
	}
	// Open-water piece: CCM3 bulk formulas with wind-dependent roughness
	// over the ocean.
	sstK := cp.sstC[oc] + 273.15
	wind := math.Hypot(in.U[a], in.V[a])
	z0 := atmos.OceanRoughness(wind, true)
	ri := atmos.BulkRichardson(in.Z[a], sstK, in.T[a], in.Q[a], wind)
	cd, ce := atmos.BulkCoefficients(in.Z[a], z0, ri)
	rho := in.Ps[a] / (atmos.RDry * in.T[a])
	wEff := math.Max(wind, 1)
	tx := rho * cd * wEff * in.U[a]
	ty := rho * cd * wEff * in.V[a]
	sh := rho * atmos.Cp * ce * wEff * (sstK - in.T[a])
	qs := atmos.SatHum(sstK, in.Ps[a])
	ev := rho * ce * wEff * math.Max(qs-in.Q[a], -in.Q[a])

	// Ocean side: stress, net heat, fresh water. Snow falling on open
	// water melts: mass gain, heat loss.
	lwUp := 0.97 * atmos.StefBo * math.Pow(sstK, 4)
	lat := atmos.LVap * ev
	netHeat := in.SWDown[a]*(1-0.07) + 0.97*in.LWDown[a] - lwUp - sh - lat
	netHeat -= in.SnowRate[a] * atmos.LFus
	return pieceFlux{
		ok:    true,
		tsurf: wAtm * sstK, albedo: wAtm * 0.07,
		taux: wAtm * tx, tauy: wAtm * ty,
		sens: wAtm * sh, evap: wAtm * ev,
		otx: wOcn * clampStress(tx, MaxStressIntoOcean), oty: wOcn * clampStress(ty, MaxStressIntoOcean),
		oheat: wOcn * clampHeat(netHeat, MaxHeatIntoOcean),
		ofw:   wOcn * (in.RainRate[a] + in.SnowRate[a] - ev),
	}
}

// accumulatePiece adds one piece's pre-weighted fluxes into the composite
// atmosphere exchange and the ocean forcing accumulators.
func (cp *Coupler) accumulatePiece(piece *OverlapCell, pf *pieceFlux, ex *atmos.SurfaceExchange) {
	if !pf.ok {
		return
	}
	a, oc := piece.Atm, piece.Ocn
	ex.TSurf[a] += pf.tsurf
	ex.Albedo[a] += pf.albedo
	ex.TauX[a] += pf.taux
	ex.TauY[a] += pf.tauy
	ex.Sensible[a] += pf.sens
	ex.Evap[a] += pf.evap
	cp.accTauX[oc] += pf.otx
	cp.accTauY[oc] += pf.oty
	cp.accHeat[oc] += pf.oheat
	cp.accFW[oc] += pf.ofw
}

// Flux bounds applied by clampAbs before atmosphere-side fluxes reach the
// ocean accumulators. Each bound carries its unit so unitcheck proves the
// clamp compares like with like; the magnitudes are set just above the
// strongest values real forcing reaches, so they only bite during the
// atmosphere's first-day spin-up shock (see the coupler bounds table test
// for the physical justification of each number).
//
//foam:units MaxStressIntoOcean=N/m^2 MaxHeatIntoOcean=W/m^2
const (
	// MaxStressIntoOcean caps the wind stress passed to the ocean. Observed
	// storm-force stress peaks near 1.5 N/m^2 (hurricane drag saturation);
	// 2 N/m^2 passes everything physical.
	MaxStressIntoOcean = 2.0
	// MaxHeatIntoOcean caps the net surface heat flux magnitude. Peak
	// observed air-sea fluxes (cold-air outbreaks over western boundary
	// currents) reach ~1000 W/m^2; 1500 W/m^2 passes everything physical.
	MaxHeatIntoOcean = 1500.0
)

// clampStress and clampHeat are the dimension-checked faces of clampAbs:
// their parameter annotations are what turns a drifted declared unit on
// either bound constant into a unitcheck finding at the call site.
//
//foam:units x=N/m^2 lim=N/m^2 return=N/m^2
func clampStress(x, lim float64) float64 { return clampAbs(x, lim) }

//foam:units x=W/m^2 lim=W/m^2 return=W/m^2
func clampHeat(x, lim float64) float64 { return clampAbs(x, lim) }

// clampAbs bounds a flux to a physically plausible magnitude, protecting
// the ocean from the atmosphere's first-day spin-up shock.
func clampAbs(x, lim float64) float64 {
	if x > lim {
		return lim
	}
	if x < -lim {
		return -lim
	}
	return x
}

// remapLowest refreshes the atmosphere-state mirror on the ocean grid.
func (cp *Coupler) remapLowest(in *atmos.LowestLevel) {
	ov := cp.Overlap
	ov.AtmToOcnInto(cp.atmOnOcn.T, in.T)
	ov.AtmToOcnInto(cp.atmOnOcn.Q, in.Q)
	ov.AtmToOcnInto(cp.atmOnOcn.U, in.U)
	ov.AtmToOcnInto(cp.atmOnOcn.V, in.V)
	ov.AtmToOcnInto(cp.atmOnOcn.Ps, in.Ps)
	ov.AtmToOcnInto(cp.atmOnOcn.Z, in.Z)
	ov.AtmToOcnInto(cp.atmOnOcn.SW, in.SWDown)
	ov.AtmToOcnInto(cp.atmOnOcn.LW, in.LWDown)
	ov.AtmToOcnInto(cp.atmOnOcn.Snow, in.SnowRate)
}

// DrainOceanForcing returns the averaged ocean forcing accumulated since
// the last call (the 6-hour coupling interval), including routed river
// water, and resets the accumulators. dt is the ocean step the forcing will
// drive. The returned Forcing is owned by the coupler and overwritten by the
// next call; consume it before draining again.
//
//foam:hotpath
func (cp *Coupler) DrainOceanForcing(dt float64) *ocean.Forcing {
	m := cp.OcnGrid.Size()
	f := cp.drainF
	steps := float64(cp.accSteps)
	if steps <= 0 {
		steps = 1
	}
	for c := 0; c < m; c++ {
		f.TauX[c] = cp.accTauX[c] / steps
		f.TauY[c] = cp.accTauY[c] / steps
		f.Heat[c] = cp.accHeat[c] / steps
		f.FreshWater[c] = cp.accFW[c] / steps
		cp.accTauX[c] = 0
		cp.accTauY[c] = 0
		cp.accHeat[c] = 0
		cp.accFW[c] = 0
	}
	// Route the accumulated runoff through the rivers and inject the mouth
	// outflow (conservatively remapped to the ocean grid).
	n := cp.AtmGrid.Size()
	meanRunoff := cp.meanRunoff
	for c := 0; c < n; c++ {
		meanRunoff[c] = cp.accRunoff[c] / steps
		cp.accRunoff[c] = 0
	}
	mouthFlux := cp.River.Step(meanRunoff, dt)
	riverOnOcn := cp.riverOnOcn
	cp.Overlap.AtmToOcnInto(riverOnOcn, mouthFlux)
	// Renormalize onto wet cells so no river water is lost on dry overlap.
	atmIn := cp.River.FluxIntegral(mouthFlux)
	var ocnIn float64
	og := cp.OcnGrid
	for j := 0; j < og.NLat(); j++ {
		for i := 0; i < og.NLon(); i++ {
			c := og.Index(j, i)
			if cp.ocnMask[c] < 0.5 {
				riverOnOcn[c] = 0
				continue
			}
			ocnIn += riverOnOcn[c] * og.Area(j, i)
		}
	}
	if ocnIn > 0 {
		scale := atmIn / ocnIn
		for c := range riverOnOcn {
			riverOnOcn[c] *= scale
		}
	}
	for c := 0; c < m; c++ {
		f.FreshWater[c] += riverOnOcn[c]
	}
	cp.waterBudget.RiverToOcean += atmIn * dt
	cp.accSteps = 0
	return f
}

// MirrorSnapshot returns copies of the mirrored ocean surface state (SST
// and freezing flux) the flux computation currently reads. Under a lagged
// schedule the mirror trails the ocean's live state by one coupling
// interval, so checkpoints must carry it explicitly.
func (cp *Coupler) MirrorSnapshot() (sst, iceForm []float64) {
	return append([]float64(nil), cp.sstC...), append([]float64(nil), cp.iceForm...)
}

// RestoreAccum installs saved ocean-forcing accumulators, so a checkpoint
// taken mid-coupling-interval resumes with the exact partial sums the
// original run carried into its next DrainOceanForcing. Nil slices leave
// the corresponding accumulator untouched (old checkpoints without
// accumulator state restore at a coupling boundary, where all are zero).
func (cp *Coupler) RestoreAccum(tauX, tauY, heat, fw, runoff []float64, steps int) {
	copy(cp.accTauX, tauX)
	copy(cp.accTauY, tauY)
	copy(cp.accHeat, heat)
	copy(cp.accFW, fw)
	copy(cp.accRunoff, runoff)
	cp.accSteps = steps
}

// AccumSnapshot returns copies of the ocean-forcing accumulators (testing
// and debugging aid).
func (cp *Coupler) AccumSnapshot() (tauX, tauY, heat, fw, runoff []float64, steps int) {
	return append([]float64(nil), cp.accTauX...),
		append([]float64(nil), cp.accTauY...),
		append([]float64(nil), cp.accHeat...),
		append([]float64(nil), cp.accFW...),
		append([]float64(nil), cp.accRunoff...),
		cp.accSteps
}
