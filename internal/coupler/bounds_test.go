package coupler

import "testing"

// TestFluxBoundsPinned pins the clampStress/clampHeat flux bounds: the
// value, the unit the //foam:units pragma declares, and the physical
// argument for the magnitude. Changing a bound (or its declared unit)
// must be a deliberate act that updates this table too.
func TestFluxBoundsPinned(t *testing.T) {
	bounds := []struct {
		name string
		got  float64
		want float64
		unit string
		why  string
	}{
		{
			name: "MaxStressIntoOcean",
			got:  MaxStressIntoOcean,
			want: 2.0,
			unit: "N/m^2",
			why:  "hurricane-force wind stress saturates near 1.5 N/m^2 (drag-coefficient rolloff), so 2 N/m^2 passes every physical stress and clips only spin-up shocks",
		},
		{
			name: "MaxHeatIntoOcean",
			got:  MaxHeatIntoOcean,
			want: 1500.0,
			unit: "W/m^2",
			why:  "peak observed air-sea heat fluxes (winter cold-air outbreaks over western boundary currents) reach ~1000 W/m^2, so 1500 W/m^2 passes every physical flux and clips only spin-up shocks",
		},
	}
	for _, b := range bounds {
		if b.got != b.want {
			t.Errorf("%s = %g, want %g %s (%s)", b.name, b.got, b.want, b.unit, b.why)
		}
	}

	// The clamps must pass physical magnitudes untouched and bound the
	// unphysical, symmetrically.
	if got := clampStress(1.5, MaxStressIntoOcean); got != 1.5 {
		t.Errorf("clampStress(1.5) = %g, want the physical stress passed through", got)
	}
	if got := clampStress(-7, MaxStressIntoOcean); got != -MaxStressIntoOcean {
		t.Errorf("clampStress(-7) = %g, want -%g", got, MaxStressIntoOcean)
	}
	if got := clampHeat(900, MaxHeatIntoOcean); got != 900 {
		t.Errorf("clampHeat(900) = %g, want the physical flux passed through", got)
	}
	if got := clampHeat(1e4, MaxHeatIntoOcean); got != MaxHeatIntoOcean {
		t.Errorf("clampHeat(1e4) = %g, want %g", got, MaxHeatIntoOcean)
	}
}
