package data

import (
	"fmt"
	"math"
	"sort"

	"foam/internal/sphere"
)

// World bundles one planetary boundary-condition set: the land/ocean mask,
// the land surface height, and the soil classification. Every grid-level
// product the model consumes — land masks, orography, soil types, ocean
// bathymetry, river routing — derives from these three point functions, so
// a scenario switches worlds by switching one value. The Earth world
// reproduces the package-level functions bit-for-bit; the alternates
// (aquaplanet, ice-world, paleo) are the idealized rungs of the model
// hierarchy the scenario registry exposes.
//
// A World is immutable after construction and safe to share.
//
//foam:sharedro
type World struct {
	Name        string
	Description string

	isLand func(lat, lon float64) bool    // radians
	height func(lat, lon float64) float64 // m, queried only over land
	soil   func(lat, lon float64) int     // soil class, queried only over land
}

// IsLand reports whether the point (radians) is land in this world.
func (w *World) IsLand(lat, lon float64) bool { return w.isLand(lat, lon) }

// Elevation returns the land surface height (m) at a point in radians;
// zero over ocean.
func (w *World) Elevation(lat, lon float64) float64 {
	if !w.isLand(lat, lon) {
		return 0
	}
	return w.height(lat, lon)
}

// SoilType classifies a land point (radians).
func (w *World) SoilType(lat, lon float64) int { return w.soil(lat, lon) }

// LandMask evaluates IsLand at each cell center of a grid.
func (w *World) LandMask(g *sphere.Grid) []bool {
	mask := make([]bool, g.Size())
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			mask[g.Index(j, i)] = w.isLand(g.Lats[j], g.Lons[i])
		}
	}
	return mask
}

// SoilTypes evaluates SoilType over a grid (value meaningful only on land).
func (w *World) SoilTypes(g *sphere.Grid) []int {
	s := make([]int, g.Size())
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			s[g.Index(j, i)] = w.soil(g.Lats[j], g.Lons[i])
		}
	}
	return s
}

// Orography returns g*height (m^2/s^2) at each cell, zero over ocean —
// the field the atmosphere's SetOrography consumes.
func (w *World) Orography(g *sphere.Grid) []float64 {
	o := make([]float64, g.Size())
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			o[g.Index(j, i)] = sphere.Gravity * w.Elevation(g.Lats[j], g.Lons[i])
		}
	}
	return o
}

// OceanKMT builds the ocean bathymetry (active levels per cell) on the
// ocean grid: full depth in the open ocean, shoaling across a continental
// margin over a few cells, zero on land.
func (w *World) OceanKMT(g *sphere.Grid, nlev int) []int {
	kmt := make([]int, g.Size())
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			c := g.Index(j, i)
			if w.isLand(g.Lats[j], g.Lons[i]) {
				kmt[c] = 0
				continue
			}
			// Distance to the nearest land among the 8 neighbours decides
			// shelf shoaling.
			minD := math.Inf(1)
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					jj := j + dj
					if jj < 0 || jj >= g.NLat() {
						continue
					}
					ii := (i + di + g.NLon()) % g.NLon()
					if w.isLand(g.Lats[jj], g.Lons[ii]) {
						d := sphere.GreatCircle(g.Lats[j], g.Lons[i], g.Lats[jj], g.Lons[ii])
						if d < minD {
							minD = d
						}
					}
				}
			}
			switch {
			case minD < 2.0e5:
				kmt[c] = nlev * 2 / 3 // shelf/slope
			default:
				kmt[c] = nlev
			}
			if kmt[c] < 2 {
				kmt[c] = 2
			}
		}
	}
	return kmt
}

// BuildRivers derives this world's river network on a grid (see
// buildRiversFrom for the pit-filling steepest-descent routing).
func (w *World) BuildRivers(g *sphere.Grid) *RiverNetwork {
	return buildRiversFrom(g, w.LandMask(g), w.Elevation)
}

// The supercontinent inventory of the paleo world: one Pangaea-like mass
// straddling the equator with two satellite fragments, plus the polar cap
// shared with Earth. Longitudes cluster so a single superocean remains.
var paleoContinents = []ellipse{
	{lat: 8, lon: 20, a: 52, b: 34, rot: 12},   // central supercontinent
	{lat: -44, lon: 48, a: 20, b: 13, rot: -8}, // southern fragment
	{lat: 54, lon: -12, a: 24, b: 12, rot: 6},  // northern arm
}

var paleoRidges = []ridge{
	{lat: 10, lon: 16, amp: 3400, sLat: 10, sLon: 8},   // central cordillera
	{lat: 48, lon: -10, amp: 1600, sLat: 7, sLon: 9},   // northern range
	{lat: -83, lon: 0, amp: 2700, sLat: 14, sLon: 180}, // polar dome
}

func paleoIsLand(lat, lon float64) bool {
	latD := lat * sphere.Rad2Deg
	lonD := wrapDeg(lon * sphere.Rad2Deg)
	if latD < -68 {
		return true // polar cap continent, as on Earth
	}
	for _, e := range paleoContinents {
		if e.contains(latD, lonD) {
			return true
		}
	}
	return false
}

// paleoSoil is the latitude-band classification without Earth's
// longitude-specific deserts: ice caps, tundra, a subtropical desert belt,
// rainforest/boreal belts, grass in between.
func paleoSoil(lat, lon float64) int {
	latD := lat * sphere.Rad2Deg
	switch {
	case latD < -68:
		return SoilIce
	case math.Abs(latD) > 58:
		return SoilTundra
	case math.Abs(latD) > 15 && math.Abs(latD) < 32:
		return SoilDesert
	case math.Abs(latD) < 12 || math.Abs(latD) > 42:
		return SoilForest
	default:
		return SoilGrass
	}
}

var (
	earthWorld = &World{
		Name:        "earth",
		Description: "synthetic Earth: real continents, orography, vegetation-derived soils",
		isLand:      IsLand,
		height:      func(lat, lon float64) float64 { return heightOver(ridges, lat, lon) },
		soil:        SoilType,
	}
	aquaWorld = &World{
		Name:        "aquaplanet",
		Description: "no land anywhere; polar caps beyond the ocean grid become ice by the coupler's fallback",
		isLand:      func(lat, lon float64) bool { return false },
		height:      func(lat, lon float64) float64 { return 0 },
		soil:        func(lat, lon float64) int { return SoilGrass },
	}
	iceWorld = &World{
		Name:        "ice-world",
		Description: "Earth's continents and orography under glacial albedo: every land cell is ice",
		isLand:      IsLand,
		height:      func(lat, lon float64) float64 { return heightOver(ridges, lat, lon) },
		soil:        func(lat, lon float64) int { return SoilIce },
	}
	paleoWorld = &World{
		Name:        "paleo",
		Description: "Pangaea-like supercontinent with a single superocean and zonal soil bands",
		isLand:      paleoIsLand,
		height:      func(lat, lon float64) float64 { return heightOver(paleoRidges, lat, lon) },
		soil:        paleoSoil,
	}
	worldsByName = map[string]*World{
		earthWorld.Name: earthWorld,
		aquaWorld.Name:  aquaWorld,
		iceWorld.Name:   iceWorld,
		paleoWorld.Name: paleoWorld,
	}
)

// Earth is the default world; the package-level mask/orography/soil/KMT
// functions are its methods.
func Earth() *World { return earthWorld }

// WorldByName resolves a world by registry name; the empty string means
// Earth.
func WorldByName(name string) (*World, error) {
	if name == "" {
		return earthWorld, nil
	}
	w, ok := worldsByName[name]
	if !ok {
		return nil, fmt.Errorf("data: unknown world %q (have %v)", name, WorldNames())
	}
	return w, nil
}

// WorldNames lists the registered worlds in sorted order.
func WorldNames() []string {
	names := make([]string, 0, len(worldsByName))
	//foam:allow nondeterminism the collected keys are sorted before return, so the result is order-independent
	for n := range worldsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
