package data

import (
	"math"
	"testing"

	"foam/internal/sphere"
)

func atmosGrid() *sphere.Grid { return sphere.NewGaussianGrid(40, 48) }

func TestLandFractionReasonable(t *testing.T) {
	g := atmosGrid()
	mask := LandMask(g)
	area, landArea := 0.0, 0.0
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			a := g.Area(j, i)
			area += a
			if mask[g.Index(j, i)] {
				landArea += a
			}
		}
	}
	frac := landArea / area
	if frac < 0.2 || frac > 0.45 {
		t.Fatalf("land fraction %.3f outside Earth-like range", frac)
	}
}

func TestBasinsExist(t *testing.T) {
	// Representative open-ocean points must be water; continental interiors
	// must be land.
	water := [][2]float64{
		{35, -40},   // North Atlantic
		{35, -170},  // North Pacific
		{-10, 80},   // Indian Ocean
		{-50, -120}, // Southern Pacific
		{0, -25},    // equatorial Atlantic
	}
	land := [][2]float64{
		{45, -100}, // North America
		{55, 60},   // Siberia
		{10, 20},   // Africa
		{-12, -58}, // Amazonia
		{-25, 134}, // Australia
		{-80, 90},  // Antarctica
		{72, -40},  // Greenland
	}
	for _, p := range water {
		if IsLand(p[0]*sphere.Deg2Rad, p[1]*sphere.Deg2Rad) {
			t.Errorf("expected water at (%v,%v)", p[0], p[1])
		}
	}
	for _, p := range land {
		if !IsLand(p[0]*sphere.Deg2Rad, p[1]*sphere.Deg2Rad) {
			t.Errorf("expected land at (%v,%v)", p[0], p[1])
		}
	}
}

func TestAmericasSeparateAtlanticFromPacific(t *testing.T) {
	// Walking along ~40N from -130 to -50 must cross land.
	found := false
	for lon := -130.0; lon <= -50; lon += 1 {
		if IsLand(40*sphere.Deg2Rad, lon*sphere.Deg2Rad) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no land barrier between Pacific and Atlantic at 40N")
	}
	// And along the equator via Central America's latitude band (~8N).
	found = false
	for lon := -110.0; lon <= -60; lon += 1 {
		if IsLand(8*sphere.Deg2Rad, lon*sphere.Deg2Rad) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no Central American land bridge")
	}
}

func TestElevationStructure(t *testing.T) {
	himalaya := Elevation(33*sphere.Deg2Rad, 88*sphere.Deg2Rad)
	if himalaya < 3000 {
		t.Fatalf("Tibet too low: %v", himalaya)
	}
	plains := Elevation(50*sphere.Deg2Rad, 35*sphere.Deg2Rad)
	if plains > 1500 || plains <= 0 {
		t.Fatalf("European plains elevation %v", plains)
	}
	if Elevation(30*sphere.Deg2Rad, -150*sphere.Deg2Rad) != 0 {
		t.Fatal("ocean should have zero elevation")
	}
}

func TestSoilTypes(t *testing.T) {
	if SoilType(-80*sphere.Deg2Rad, 0) != SoilIce {
		t.Fatal("Antarctica should be ice")
	}
	if SoilType(72*sphere.Deg2Rad, -40*sphere.Deg2Rad) != SoilIce {
		t.Fatal("Greenland should be ice")
	}
	if SoilType(22*sphere.Deg2Rad, 10*sphere.Deg2Rad) != SoilDesert {
		t.Fatal("Sahara should be desert")
	}
	if SoilType(0, 20*sphere.Deg2Rad) != SoilForest {
		t.Fatal("equatorial Africa should be forest")
	}
	for ty := 0; ty < NumSoilTypes; ty++ {
		p := Soils[ty]
		if p.Albedo <= 0 || p.Albedo >= 1 || p.Conductivity <= 0 || p.HeatCapacity <= 0 {
			t.Fatalf("soil %d has invalid properties %+v", ty, p)
		}
	}
}

func TestOceanKMT(t *testing.T) {
	g := sphere.NewMercatorGrid(128, 128, -72, 72)
	kmt := OceanKMT(g, 16)
	openOcean, shelf := 0, 0
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			c := g.Index(j, i)
			if IsLand(g.Lats[j], g.Lons[i]) {
				if kmt[c] != 0 {
					t.Fatal("land cell with nonzero kmt")
				}
				continue
			}
			if kmt[c] < 2 {
				t.Fatal("wet cell with < 2 levels")
			}
			if kmt[c] == 16 {
				openOcean++
			} else {
				shelf++
			}
		}
	}
	if openOcean == 0 || shelf == 0 {
		t.Fatalf("bathymetry missing open ocean (%d) or shelves (%d)", openOcean, shelf)
	}
}

func TestSSTClimatologyStructure(t *testing.T) {
	// Warm tropics, cold poles.
	eq := SSTClimatology(0, -30*sphere.Deg2Rad, 3)
	polar := SSTClimatology(65*sphere.Deg2Rad, -30*sphere.Deg2Rad, 3)
	if eq < 24 || eq > 32 {
		t.Fatalf("equatorial SST %v", eq)
	}
	if polar > 10 {
		t.Fatalf("polar SST %v too warm", polar)
	}
	// Warm pool warmer than cold tongue along the equator.
	wp := SSTClimatology(2*sphere.Deg2Rad, 140*sphere.Deg2Rad, 6)
	ct := SSTClimatology(0, -100*sphere.Deg2Rad, 6)
	if wp-ct < 2 {
		t.Fatalf("warm pool - cold tongue contrast too weak: %v vs %v", wp, ct)
	}
	// Never below freezing clamp.
	for mth := 0; mth < 12; mth++ {
		for lat := -85.0; lat <= 85; lat += 5 {
			if v := SSTClimatology(lat*sphere.Deg2Rad, 0, mth); v < -1.92-1e-9 {
				t.Fatalf("SST %v below freezing clamp", v)
			}
		}
	}
	// Seasonal cycle: northern mid-latitudes warmer in July (month 6) than
	// January (month 0).
	july := SSTClimatology(40*sphere.Deg2Rad, -160*sphere.Deg2Rad, 6)
	jan := SSTClimatology(40*sphere.Deg2Rad, -160*sphere.Deg2Rad, 0)
	if july <= jan {
		t.Fatalf("no northern summer warming: july %v jan %v", july, jan)
	}
}

func TestAnnualMeanMatchesMonthlyAverage(t *testing.T) {
	g := atmosGrid()
	ann := AnnualMeanSST(g)
	c := g.Index(20, 5)
	sum := 0.0
	for mth := 0; mth < 12; mth++ {
		sum += SSTClimatologyGrid(g, mth)[c]
	}
	if math.Abs(ann[c]-sum/12) > 1e-12 {
		t.Fatal("annual mean inconsistent with monthly fields")
	}
}

func TestRiversAllDrainToOcean(t *testing.T) {
	g := atmosGrid()
	rn := BuildRivers(g)
	land := LandMask(g)
	for c := range land {
		if !land[c] {
			if rn.Dir[c] != DirOcean {
				t.Fatalf("ocean cell %d has dir %d", c, rn.Dir[c])
			}
			continue
		}
		// Follow the flow; must reach ocean within the grid size.
		cur := c
		for step := 0; ; step++ {
			if step > g.Size() {
				t.Fatalf("cell %d does not drain (cycle)", c)
			}
			if rn.Dir[cur] == DirMouth {
				if rn.MouthOcean[cur] < 0 || land[rn.MouthOcean[cur]] {
					t.Fatalf("mouth %d drains to non-ocean", cur)
				}
				break
			}
			next := rn.Downstream(cur)
			if next < 0 {
				t.Fatalf("land cell %d has no downstream", cur)
			}
			if !land[next] {
				t.Fatalf("dir should have been DirMouth at %d", cur)
			}
			cur = next
		}
		if rn.Dist[c] <= 0 {
			t.Fatalf("land cell %d has nonpositive downstream distance", c)
		}
	}
}

func TestWindStressClimatology(t *testing.T) {
	// Easterlies at the equator, westerlies near 45 degrees.
	if WindStressClimatology(0) >= 0 {
		t.Fatal("expected equatorial easterlies")
	}
	if WindStressClimatology(45*sphere.Deg2Rad) <= 0 {
		t.Fatal("expected mid-latitude westerlies")
	}
}
