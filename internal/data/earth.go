// Package data provides the synthetic Earth that substitutes for the
// observational datasets FOAM consumed (real topography, the Matthews
// vegetation data, the Shea-Trenberth-Reynolds SST climatology, and
// hand-tuned river directions). Everything is deterministic and analytic:
// polygonal/elliptical continents with recognizable Atlantic, Pacific,
// Indian and Arctic basins; Gaussian-ridge orography; latitude-band soil
// types; and an Earth-like monthly SST climatology used as the "observed"
// reference in the Figure-3 experiment. See DESIGN.md section 2 for why
// these substitutions preserve the behaviours under test.
//
//foam:deterministic
package data

import (
	"math"

	"foam/internal/sphere"
)

// ellipse is a rotated elliptical landmass in degree coordinates.
type ellipse struct {
	lat, lon float64 // center, degrees
	a, b     float64 // semi-axes: a along rotated east, b along rotated north
	rot      float64 // rotation, degrees counterclockwise
}

func (e ellipse) contains(latDeg, lonDeg float64) bool {
	dlon := wrapDeg(lonDeg - e.lon)
	dlat := latDeg - e.lat
	r := e.rot * math.Pi / 180
	x := dlon*math.Cos(r) + dlat*math.Sin(r)
	y := -dlon*math.Sin(r) + dlat*math.Cos(r)
	return (x/e.a)*(x/e.a)+(y/e.b)*(y/e.b) <= 1
}

func wrapDeg(d float64) float64 {
	for d > 180 {
		d -= 360
	}
	for d < -180 {
		d += 360
	}
	return d
}

// The continental inventory. Shapes are chosen so the ocean basins the
// paper's experiments need — a North Atlantic and North Pacific separated
// by the Americas and Eurasia, an Indian Ocean, a mostly enclosed Arctic —
// are all present at R15 and 128x128 resolutions.
var continents = []ellipse{
	// North America.
	{lat: 48, lon: -100, a: 38, b: 22, rot: -12},
	{lat: 62, lon: -110, a: 30, b: 12, rot: 0},
	// Central America bridge.
	{lat: 20, lon: -95, a: 12, b: 7, rot: -35},
	{lat: 8, lon: -80, a: 6, b: 4, rot: -40},
	// South America.
	{lat: -12, lon: -60, a: 18, b: 22, rot: 10},
	{lat: -38, lon: -66, a: 8, b: 16, rot: 0},
	// Greenland.
	{lat: 72, lon: -40, a: 12, b: 10, rot: 0},
	// Eurasia.
	{lat: 52, lon: 40, a: 45, b: 20, rot: 0},
	{lat: 58, lon: 105, a: 48, b: 18, rot: 0},
	{lat: 30, lon: 80, a: 22, b: 12, rot: 0},  // South Asia
	{lat: 35, lon: 110, a: 18, b: 14, rot: 0}, // East Asia
	{lat: 42, lon: 5, a: 14, b: 8, rot: 0},    // Europe
	{lat: 22, lon: 45, a: 12, b: 9, rot: 20},  // Arabia
	// Southeast Asia peninsula.
	{lat: 12, lon: 102, a: 8, b: 8, rot: 0},
	// Africa.
	{lat: 12, lon: 15, a: 22, b: 16, rot: 0},
	{lat: -15, lon: 25, a: 14, b: 18, rot: 0},
	// Australia.
	{lat: -25, lon: 134, a: 17, b: 10, rot: 0},
	// Antarctica is handled separately by latitude.
}

// IsLand reports whether the point (radians) is land.
func IsLand(lat, lon float64) bool {
	latD := lat * sphere.Rad2Deg
	lonD := wrapDeg(lon * sphere.Rad2Deg)
	if latD < -68 {
		return true // Antarctica
	}
	for _, e := range continents {
		if e.contains(latD, lonD) {
			return true
		}
	}
	return false
}

// LandMask evaluates IsLand at each cell center of a grid.
func LandMask(g *sphere.Grid) []bool {
	return Earth().LandMask(g)
}

// ridge is a Gaussian mountain ridge.
type ridge struct {
	lat, lon   float64 // center, degrees
	amp        float64 // height, m
	sLat, sLon float64 // spreads, degrees
}

var ridges = []ridge{
	{lat: 42, lon: -112, amp: 2200, sLat: 14, sLon: 6}, // Rockies
	{lat: -20, lon: -69, amp: 3600, sLat: 18, sLon: 4}, // Andes
	{lat: 33, lon: 88, amp: 4600, sLat: 7, sLon: 16},   // Tibet/Himalaya
	{lat: 46, lon: 10, amp: 1400, sLat: 4, sLon: 7},    // Alps
	{lat: 72, lon: -40, amp: 2400, sLat: 8, sLon: 9},   // Greenland dome
	{lat: -83, lon: 0, amp: 2700, sLat: 14, sLon: 180}, // Antarctic dome
	{lat: 3, lon: 36, amp: 1300, sLat: 10, sLon: 7},    // East African highlands
	{lat: 62, lon: 130, amp: 900, sLat: 10, sLon: 18},  // East Siberian uplands
}

// Elevation returns the land surface height (m) at a point in radians;
// zero over ocean.
func Elevation(lat, lon float64) float64 {
	if !IsLand(lat, lon) {
		return 0
	}
	return heightOver(ridges, lat, lon)
}

// heightOver sums a ridge inventory over the continental base elevation.
func heightOver(rs []ridge, lat, lon float64) float64 {
	latD := lat * sphere.Rad2Deg
	lonD := wrapDeg(lon * sphere.Rad2Deg)
	h := 220.0 // continental base elevation
	for _, r := range rs {
		dlat := (latD - r.lat) / r.sLat
		dlon := wrapDeg(lonD-r.lon) / r.sLon
		h += r.amp * math.Exp(-(dlat*dlat + dlon*dlon))
	}
	return h
}

// Orography returns g*height (m^2/s^2) at each cell, zero over ocean —
// the field the atmosphere's SetOrography consumes.
func Orography(g *sphere.Grid) []float64 {
	return Earth().Orography(g)
}

// Soil types (paper: "5 distinct types derived from the vegetation data").
const (
	SoilIce = iota
	SoilTundra
	SoilDesert
	SoilGrass
	SoilForest
	NumSoilTypes
)

// SoilProperties holds the 4-layer land model parameters per type.
type SoilProperties struct {
	Albedo       float64
	Roughness    float64    // m
	Conductivity float64    // W/(m K)
	HeatCapacity float64    // J/(m^3 K)
	LayerDepth   [4]float64 // m
}

// Soils indexes properties by soil type.
var Soils = [NumSoilTypes]SoilProperties{
	SoilIce:    {Albedo: 0.70, Roughness: 0.001, Conductivity: 2.2, HeatCapacity: 1.9e6, LayerDepth: [4]float64{0.05, 0.2, 0.6, 2.0}},
	SoilTundra: {Albedo: 0.22, Roughness: 0.02, Conductivity: 1.5, HeatCapacity: 2.4e6, LayerDepth: [4]float64{0.05, 0.2, 0.6, 2.0}},
	SoilDesert: {Albedo: 0.32, Roughness: 0.01, Conductivity: 0.8, HeatCapacity: 1.3e6, LayerDepth: [4]float64{0.05, 0.2, 0.6, 2.0}},
	SoilGrass:  {Albedo: 0.20, Roughness: 0.05, Conductivity: 1.1, HeatCapacity: 2.0e6, LayerDepth: [4]float64{0.05, 0.2, 0.6, 2.0}},
	SoilForest: {Albedo: 0.13, Roughness: 0.8, Conductivity: 1.2, HeatCapacity: 2.2e6, LayerDepth: [4]float64{0.05, 0.2, 0.6, 2.0}},
}

// SoilType classifies a land point (radians). Ocean points return SoilGrass
// (unused).
func SoilType(lat, lon float64) int {
	latD := lat * sphere.Rad2Deg
	lonD := wrapDeg(lon * sphere.Rad2Deg)
	switch {
	case latD < -68:
		return SoilIce
	case ellipse{lat: 72, lon: -40, a: 12, b: 10}.contains(latD, lonD):
		return SoilIce // Greenland
	case math.Abs(latD) > 58:
		return SoilTundra
	case math.Abs(latD) > 15 && math.Abs(latD) < 32 &&
		(inRange(lonD, -15, 50) || inRange(lonD, 40, 75) || inRange(lonD, 115, 140) && latD < 0 ||
			inRange(lonD, -115, -100)):
		return SoilDesert // Sahara/Arabia/Australia/SW North America belts
	case math.Abs(latD) < 12 || math.Abs(latD) > 42:
		return SoilForest // rainforest and boreal belts
	default:
		return SoilGrass
	}
}

func inRange(x, lo, hi float64) bool { return x >= lo && x <= hi }

// SoilTypes evaluates SoilType over a grid (value meaningful only on land).
func SoilTypes(g *sphere.Grid) []int {
	return Earth().SoilTypes(g)
}

// OceanKMT builds the ocean bathymetry (active levels per cell) on the
// ocean grid: full depth in the open ocean, shoaling across a continental
// margin over a few cells, zero on land. The paper notes FOAM's topography
// is "somewhat tuned to preserve basin topology" — here topology comes from
// the analytic continents directly.
func OceanKMT(g *sphere.Grid, nlev int) []int {
	return Earth().OceanKMT(g, nlev)
}

// SSTClimatology is the analytic monthly "observed" sea surface temperature
// (deg C) standing in for the Shea-Trenberth-Reynolds climatology of the
// paper's Figure 3. month is 0-11; the 360-day calendar makes each month 30
// days. Structure: a zonal profile, an Indo-Pacific warm pool, an eastern
// equatorial Pacific cold tongue, poleward-warm western boundary currents,
// and a seasonally shifting thermal equator.
func SSTClimatology(lat, lon float64, month int) float64 {
	latD := lat * sphere.Rad2Deg
	lonD := wrapDeg(lon * sphere.Rad2Deg)
	// Seasonal shift of the thermal equator (+/- 6 degrees around July/Jan).
	phase := 2 * math.Pi * (float64(month) + 0.5) / 12
	shift := 6 * math.Cos(phase-math.Pi*7/6) // warmest shifted north mid-year
	eff := latD - shift
	t := 28.5*math.Exp(-(eff/32)*(eff/32)) - 1.5
	// Indo-Pacific warm pool.
	t += 2.0 * math.Exp(-sq((latD-2)/10)-sq(wrapDeg(lonD-140)/35))
	// Eastern equatorial Pacific cold tongue.
	t -= 3.0 * math.Exp(-sq(latD/4)-sq(wrapDeg(lonD+100)/25))
	// Western boundary warm tongues: Gulf Stream and Kuroshio.
	t += 2.5 * math.Exp(-sq((latD-38)/6)-sq(wrapDeg(lonD+65)/12))
	t += 2.0 * math.Exp(-sq((latD-36)/6)-sq(wrapDeg(lonD-150)/14))
	// Seasonal amplitude grows with latitude (hemisphere-dependent sign).
	t += 4 * math.Sin(lat) * math.Cos(phase-math.Pi*7/6) * math.Min(1, math.Abs(latD)/45)
	if t < -1.92 {
		t = -1.92
	}
	return t
}

func sq(x float64) float64 { return x * x }

// SSTClimatologyGrid evaluates the climatology over the ocean cells of a
// grid; land cells get 0.
func SSTClimatologyGrid(g *sphere.Grid, month int) []float64 {
	out := make([]float64, g.Size())
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			if !IsLand(g.Lats[j], g.Lons[i]) {
				out[g.Index(j, i)] = SSTClimatology(g.Lats[j], g.Lons[i], month)
			}
		}
	}
	return out
}

// AnnualMeanSST averages the monthly climatology.
func AnnualMeanSST(g *sphere.Grid) []float64 {
	out := make([]float64, g.Size())
	for mth := 0; mth < 12; mth++ {
		f := SSTClimatologyGrid(g, mth)
		for c := range out {
			out[c] += f[c] / 12
		}
	}
	return out
}

// WindStressClimatology returns an analytic zonal wind stress profile
// (N/m^2) for standalone ocean experiments: easterly trades, mid-latitude
// westerlies, weak polar easterlies.
func WindStressClimatology(lat float64) float64 {
	return -0.08 * math.Cos(3*lat) * math.Exp(-sq(lat*sphere.Rad2Deg/75))
}
