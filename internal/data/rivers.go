package data

import (
	"math"

	"foam/internal/sphere"
)

// Neighbour offsets for river routing (8-connected), indexed 0-7.
var NeighbourOffsets = [8][2]int{
	{-1, -1}, {-1, 0}, {-1, 1},
	{0, -1}, {0, 1},
	{1, -1}, {1, 0}, {1, 1},
}

// Direction codes besides 0-7.
const (
	DirOcean = -2 // cell is ocean
	DirMouth = -1 // land cell draining directly into an adjacent ocean cell
)

// RiverNetwork holds flow directions and downstream distances on a grid.
//
//foam:sharedro
type RiverNetwork struct {
	Grid *sphere.Grid
	// Dir[c] is a neighbour index 0-7, or DirMouth/DirOcean. For DirMouth
	// cells, MouthOcean[c] is the ocean cell index receiving the outflow.
	Dir []int
	//foam:units Dist=m
	Dist       []float64 // downstream distance, m (0 for ocean cells)
	MouthOcean []int     // receiving ocean cell for mouths, else -1
}

// BuildRivers derives river flow directions from the synthetic topography
// by steepest descent, with iterative pit-filling so every land cell drains
// to the ocean. The paper set many directions by hand to match observed
// basins; pit-filling plays that role here.
func BuildRivers(g *sphere.Grid) *RiverNetwork {
	return Earth().BuildRivers(g)
}

// buildRiversFrom runs the pit-filling steepest-descent routing over an
// arbitrary land mask and elevation function (one World's boundary set).
func buildRiversFrom(g *sphere.Grid, land []bool, elevAt func(lat, lon float64) float64) *RiverNetwork {
	nlat, nlon := g.NLat(), g.NLon()
	n := g.Size()
	elev := make([]float64, n)
	for j := 0; j < nlat; j++ {
		for i := 0; i < nlon; i++ {
			c := g.Index(j, i)
			if land[c] {
				elev[c] = elevAt(g.Lats[j], g.Lons[i])
			} else {
				elev[c] = -100 // ocean is always downhill
			}
		}
	}
	// Pit filling: raise any landlocked local minimum just above its lowest
	// neighbour until all land drains.
	for pass := 0; pass < 4*n; pass++ {
		changed := false
		for j := 0; j < nlat; j++ {
			for i := 0; i < nlon; i++ {
				c := g.Index(j, i)
				if !land[c] {
					continue
				}
				low := math.Inf(1)
				for _, off := range NeighbourOffsets {
					jj := j + off[0]
					if jj < 0 || jj >= nlat {
						continue
					}
					ii := (i + off[1] + nlon) % nlon
					cc := g.Index(jj, ii)
					if elev[cc] < low {
						low = elev[cc]
					}
				}
				if low >= elev[c] {
					elev[c] = low + 0.5
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	rn := &RiverNetwork{Grid: g,
		Dir:        make([]int, n),
		Dist:       make([]float64, n),
		MouthOcean: make([]int, n),
	}
	for c := range rn.MouthOcean {
		rn.MouthOcean[c] = -1
	}
	for j := 0; j < nlat; j++ {
		for i := 0; i < nlon; i++ {
			c := g.Index(j, i)
			if !land[c] {
				rn.Dir[c] = DirOcean
				continue
			}
			best := -1
			bestDrop := 0.0
			bestDist := 1.0
			for k, off := range NeighbourOffsets {
				jj := j + off[0]
				if jj < 0 || jj >= nlat {
					continue
				}
				ii := (i + off[1] + nlon) % nlon
				cc := g.Index(jj, ii)
				d := sphere.GreatCircle(g.Lats[j], g.Lons[i], g.Lats[jj], g.Lons[ii])
				drop := (elev[c] - elev[cc]) / d
				if drop > bestDrop {
					bestDrop = drop
					best = k
					bestDist = d
				}
			}
			if best < 0 {
				// Should not happen after pit filling, but keep the water:
				// treat the cell as an internal mouth into the nearest
				// ocean cell.
				rn.Dir[c] = DirMouth
				rn.Dist[c] = 1e5
				rn.MouthOcean[c] = nearestOcean(g, land, j, i)
				continue
			}
			off := NeighbourOffsets[best]
			cc := g.Index(j+off[0], (i+off[1]+nlon)%nlon)
			rn.Dist[c] = bestDist
			if land[cc] {
				rn.Dir[c] = best
			} else {
				rn.Dir[c] = DirMouth
				rn.MouthOcean[c] = cc
			}
		}
	}
	return rn
}

// nearestOcean scans outward for the closest ocean cell.
func nearestOcean(g *sphere.Grid, land []bool, j, i int) int {
	nlat, nlon := g.NLat(), g.NLon()
	for r := 1; r < nlat; r++ {
		bestD := math.Inf(1)
		best := -1
		for dj := -r; dj <= r; dj++ {
			jj := j + dj
			if jj < 0 || jj >= nlat {
				continue
			}
			for di := -r; di <= r; di++ {
				if absInt(dj) != r && absInt(di) != r {
					continue
				}
				ii := (i + di + nlon) % nlon
				cc := g.Index(jj, ii)
				if !land[cc] {
					d := sphere.GreatCircle(g.Lats[j], g.Lons[i], g.Lats[jj], g.Lons[ii])
					if d < bestD {
						bestD = d
						best = cc
					}
				}
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Downstream returns the cell index the given land cell flows into (land or
// ocean), or -1 for ocean/unroutable cells.
func (rn *RiverNetwork) Downstream(c int) int {
	g := rn.Grid
	switch rn.Dir[c] {
	case DirOcean:
		return -1
	case DirMouth:
		return rn.MouthOcean[c]
	default:
		off := NeighbourOffsets[rn.Dir[c]]
		j := c / g.NLon()
		i := c % g.NLon()
		return g.Index(j+off[0], (i+off[1]+g.NLon())%g.NLon())
	}
}
