package sphere

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussLegendreWeightsSumToTwo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 40, 64, 128} {
		_, w := GaussLegendre(n)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Fatalf("n=%d: weights sum %v, want 2", n, sum)
		}
	}
}

func TestGaussLegendreNodesAscendSymmetric(t *testing.T) {
	nodes, _ := GaussLegendre(40)
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatalf("nodes not ascending at %d", i)
		}
	}
	for i := 0; i < 20; i++ {
		if math.Abs(nodes[i]+nodes[39-i]) > 1e-13 {
			t.Fatalf("nodes not symmetric at %d: %v vs %v", i, nodes[i], nodes[39-i])
		}
	}
}

// Gauss quadrature with n nodes integrates polynomials up to degree 2n-1
// exactly.
func TestGaussLegendreExactForPolynomials(t *testing.T) {
	n := 6
	nodes, w := GaussLegendre(n)
	// integral of x^k over [-1,1] = 0 (odd), 2/(k+1) (even)
	for k := 0; k <= 2*n-1; k++ {
		got := 0.0
		for i := range nodes {
			got += w[i] * math.Pow(nodes[i], float64(k))
		}
		want := 0.0
		if k%2 == 0 {
			want = 2 / float64(k+1)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("degree %d: got %v want %v", k, got, want)
		}
	}
}

func TestGaussLegendreKnownRoots(t *testing.T) {
	// n=2: roots +-1/sqrt(3), weights 1.
	nodes, w := GaussLegendre(2)
	if math.Abs(nodes[1]-1/math.Sqrt(3)) > 1e-14 || math.Abs(w[0]-1) > 1e-14 {
		t.Fatalf("n=2 wrong: %v %v", nodes, w)
	}
	// n=3: roots 0, +-sqrt(3/5); weights 8/9, 5/9.
	nodes, w = GaussLegendre(3)
	if math.Abs(nodes[1]) > 1e-14 || math.Abs(nodes[2]-math.Sqrt(0.6)) > 1e-14 {
		t.Fatalf("n=3 roots wrong: %v", nodes)
	}
	if math.Abs(w[1]-8.0/9) > 1e-14 || math.Abs(w[0]-5.0/9) > 1e-14 {
		t.Fatalf("n=3 weights wrong: %v", w)
	}
}

func TestMercatorLatitudesSpacingProportionalToCos(t *testing.T) {
	lats := MercatorLatitudes(64, -60*Deg2Rad, 60*Deg2Rad)
	// dphi/cos(phi) should be constant.
	ref := (lats[1] - lats[0]) / math.Cos((lats[0]+lats[1])/2)
	for j := 1; j < len(lats)-1; j++ {
		r := (lats[j+1] - lats[j]) / math.Cos((lats[j]+lats[j+1])/2)
		if math.Abs(r-ref)/ref > 1e-3 {
			t.Fatalf("Mercator spacing not proportional to cos at %d: %v vs %v", j, r, ref)
		}
	}
	if math.Abs(lats[0]+60*Deg2Rad) > 1e-12 || math.Abs(lats[63]-60*Deg2Rad) > 1e-12 {
		t.Fatalf("endpoints wrong: %v %v", lats[0], lats[63])
	}
}

func TestGridTotalAreaIsSphere(t *testing.T) {
	g := NewGaussianGrid(40, 48)
	want := 4 * math.Pi * Radius * Radius
	if math.Abs(g.TotalArea()-want)/want > 1e-12 {
		t.Fatalf("total area %v want %v", g.TotalArea(), want)
	}
}

func TestGridAreaMeanOfConstant(t *testing.T) {
	g := NewGaussianGrid(16, 32)
	f := make([]float64, g.Size())
	for i := range f {
		f[i] = 7.5
	}
	if math.Abs(g.AreaMean(f)-7.5) > 1e-12 {
		t.Fatalf("area mean of constant: %v", g.AreaMean(f))
	}
}

func TestGridAreaMeanMasked(t *testing.T) {
	g := NewGaussianGrid(8, 16)
	f := make([]float64, g.Size())
	mask := make([]bool, g.Size())
	for k := range f {
		if k%2 == 0 {
			f[k] = 3
			mask[k] = true
		} else {
			f[k] = 1000 // must be ignored
		}
	}
	if got := g.AreaMeanMasked(f, mask); math.Abs(got-3) > 1e-12 {
		t.Fatalf("masked mean %v want 3", got)
	}
	empty := make([]bool, g.Size())
	if got := g.AreaMeanMasked(f, empty); got != 0 {
		t.Fatalf("empty mask mean %v want 0", got)
	}
}

func TestGridEdgesMonotone(t *testing.T) {
	g := NewMercatorGrid(128, 128, -72, 72)
	for j := 1; j <= g.NLat(); j++ {
		if g.LatEdges[j] <= g.LatEdges[j-1] {
			t.Fatalf("lat edges not monotone at %d", j)
		}
	}
	for i := 1; i <= g.NLon(); i++ {
		if g.LonEdges[i] <= g.LonEdges[i-1] {
			t.Fatalf("lon edges not monotone at %d", i)
		}
	}
}

func TestGreatCircleKnownValues(t *testing.T) {
	// Quarter circumference pole to equator.
	want := math.Pi / 2 * Radius
	got := GreatCircle(0, 0, math.Pi/2, 0)
	if math.Abs(got-want) > 1 {
		t.Fatalf("pole-equator distance %v want %v", got, want)
	}
	// Antipodal points: half circumference.
	got = GreatCircle(0, 0, 0, math.Pi)
	if math.Abs(got-math.Pi*Radius) > 1 {
		t.Fatalf("antipodal distance %v", got)
	}
	// Same point: zero.
	if d := GreatCircle(0.3, 1.2, 0.3, 1.2); d > 1e-6 {
		t.Fatalf("self distance %v", d)
	}
}

func TestCoriolis(t *testing.T) {
	if Coriolis(0) != 0 {
		t.Fatal("equatorial Coriolis nonzero")
	}
	if math.Abs(Coriolis(math.Pi/2)-2*Omega) > 1e-18 {
		t.Fatal("polar Coriolis wrong")
	}
	if Coriolis(-math.Pi/4) >= 0 {
		t.Fatal("southern hemisphere Coriolis should be negative")
	}
}

func TestWrapLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := WrapLon(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("WrapLon(%v)=%v want %v", c.in, got, c.want)
		}
	}
}

// Property: grid box areas are positive and the area of any grid built from
// random monotone latitude centers sums to the sphere.
func TestGridAreaProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nlat := 2 + rng.Intn(30)
		nlon := 2 + rng.Intn(30)
		lats := make([]float64, nlat)
		// Random ascending latitudes strictly inside (-pi/2, pi/2).
		for i := range lats {
			lats[i] = rng.Float64()
		}
		sum := 0.0
		for _, v := range lats {
			sum += v
		}
		acc := 0.0
		for i, v := range lats {
			acc += v
			lats[i] = -math.Pi/2 + math.Pi*acc/(sum+1) // ascending, in range
		}
		g := NewGrid(lats, UniformLongitudes(nlon))
		for j := 0; j < nlat; j++ {
			for i := 0; i < nlon; i++ {
				if g.Area(j, i) <= 0 {
					return false
				}
			}
		}
		want := 4 * math.Pi * Radius * Radius
		return math.Abs(g.TotalArea()-want)/want < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gauss-Legendre quadrature integrates random degree <= 2n-1
// polynomials to near machine precision.
func TestGaussQuadratureRandomPolynomialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		deg := rng.Intn(2 * n) // <= 2n-1
		coef := make([]float64, deg+1)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		nodes, w := GaussLegendre(n)
		got := 0.0
		for i := range nodes {
			p := 0.0
			for k := deg; k >= 0; k-- {
				p = p*nodes[i] + coef[k]
			}
			got += w[i] * p
		}
		want := 0.0
		for k := 0; k <= deg; k += 2 {
			want += coef[k] * 2 / float64(k+1)
		}
		return math.Abs(got-want) < 1e-10*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
