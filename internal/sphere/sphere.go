// Package sphere provides the spherical geometry shared by the FOAM
// components: Gaussian latitudes and quadrature weights for the spectral
// atmosphere, Mercator latitude spacing for the ocean grid, grid-box areas,
// and distance calculations.
package sphere

import (
	"fmt"
	"math"
)

// Physical constants shared across the model (SI units).
//
//foam:units Radius=m Omega=rad/s Gravity=m/s^2 SecondsPerDay=s
const (
	// Radius is the Earth's radius in metres.
	Radius = 6.371e6
	// Omega is the Earth's angular velocity in rad/s.
	Omega = 7.292e-5
	// Gravity is the surface gravitational acceleration in m/s^2.
	Gravity = 9.80616
	// SecondsPerDay is the length of a (model) day.
	SecondsPerDay = 86400.0
	// DaysPerYear is the length of the model year in days. FOAM-Go uses a
	// 360-day calendar of twelve 30-day months, a common climate-model
	// simplification.
	DaysPerYear = 360.0
)

// Deg2Rad and Rad2Deg convert between degrees and radians.
const (
	Deg2Rad = math.Pi / 180
	Rad2Deg = 180 / math.Pi
)

// GaussLegendre returns the n Gauss-Legendre nodes (ascending, in (-1,1))
// and weights for quadrature on [-1,1]. The nodes are the roots of the
// Legendre polynomial P_n; in atmospheric use the node x is sin(latitude).
func GaussLegendre(n int) (nodes, weights []float64) {
	if n < 1 {
		panic(fmt.Sprintf("sphere: GaussLegendre order %d must be >= 1", n))
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess (Abramowitz & Stegun 25.4.30 vicinity).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p2 := p1
				p1 = p0
				p0 = ((2*float64(j)+1)*x*p1 - float64(j)*p2) / float64(j+1)
			}
			// Derivative from the standard relation.
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights
}

// GaussianLatitudes returns the nlat Gaussian latitudes in radians
// (ascending from south to north) and the matching quadrature weights,
// which sum to 2.
func GaussianLatitudes(nlat int) (lats, weights []float64) {
	nodes, w := GaussLegendre(nlat)
	lats = make([]float64, nlat)
	for i, mu := range nodes {
		lats[i] = math.Asin(mu)
	}
	return lats, w
}

// MercatorLatitudes returns nlat latitudes (radians, ascending) uniformly
// spaced in the Mercator coordinate y = ln(tan(pi/4 + phi/2)) between
// latSouth and latNorth (radians). Spacing in latitude is then proportional
// to cos(latitude), keeping grid boxes near-isotropic — the ocean grid of
// the paper ("simple, unstaggered Mercator 128 x 128 point grid").
func MercatorLatitudes(nlat int, latSouth, latNorth float64) []float64 {
	if nlat < 2 {
		panic("sphere: MercatorLatitudes needs nlat >= 2")
	}
	if latSouth >= latNorth {
		panic("sphere: MercatorLatitudes needs latSouth < latNorth")
	}
	y0 := mercY(latSouth)
	y1 := mercY(latNorth)
	lats := make([]float64, nlat)
	for i := 0; i < nlat; i++ {
		y := y0 + (y1-y0)*float64(i)/float64(nlat-1)
		lats[i] = 2*math.Atan(math.Exp(y)) - math.Pi/2
	}
	return lats
}

func mercY(phi float64) float64 { return math.Log(math.Tan(math.Pi/4 + phi/2)) }

// UniformLongitudes returns nlon longitudes in radians starting at 0,
// spaced 2*pi/nlon apart (cell centers of a periodic grid).
func UniformLongitudes(nlon int) []float64 {
	lons := make([]float64, nlon)
	for i := range lons {
		lons[i] = 2 * math.Pi * float64(i) / float64(nlon)
	}
	return lons
}

// Grid is a latitude-longitude grid. Latitudes ascend south to north;
// longitudes ascend eastward from 0. Cell (j,i) is centered at
// (Lats[j], Lons[i]); LatEdges/LonEdges give the nlat+1 / nlon+1 box
// boundaries used for areas and overlap construction.
//
//foam:sharedro
type Grid struct {
	Lats, Lons         []float64 // cell centers, radians
	LatEdges, LonEdges []float64 // cell edges, radians
	area               []float64 // per-cell area, m^2, row-major [j*nlon+i]
}

// NewGrid builds a grid from cell-center latitudes and longitudes. Latitude
// edges are midpoints clamped to the poles; longitude edges are midpoints of
// the periodic longitudes.
func NewGrid(lats, lons []float64) *Grid {
	nlat, nlon := len(lats), len(lons)
	if nlat < 1 || nlon < 1 {
		panic("sphere: empty grid")
	}
	g := &Grid{Lats: append([]float64(nil), lats...), Lons: append([]float64(nil), lons...)}
	g.LatEdges = make([]float64, nlat+1)
	g.LatEdges[0] = -math.Pi / 2
	g.LatEdges[nlat] = math.Pi / 2
	for j := 1; j < nlat; j++ {
		g.LatEdges[j] = 0.5 * (lats[j-1] + lats[j])
	}
	g.LonEdges = make([]float64, nlon+1)
	dlon := 2 * math.Pi / float64(nlon)
	for i := 0; i <= nlon; i++ {
		g.LonEdges[i] = lons[0] - dlon/2 + dlon*float64(i)
	}
	g.area = make([]float64, nlat*nlon)
	for j := 0; j < nlat; j++ {
		band := Radius * Radius * dlon * (math.Sin(g.LatEdges[j+1]) - math.Sin(g.LatEdges[j]))
		for i := 0; i < nlon; i++ {
			g.area[j*nlon+i] = band
		}
	}
	return g
}

// NewGaussianGrid builds the atmosphere grid: nlat Gaussian latitudes and
// nlon uniform longitudes.
func NewGaussianGrid(nlat, nlon int) *Grid {
	lats, _ := GaussianLatitudes(nlat)
	return NewGrid(lats, UniformLongitudes(nlon))
}

// NewMercatorGrid builds the ocean grid: nlat Mercator-spaced latitudes
// between latSouth and latNorth (degrees) and nlon uniform longitudes.
func NewMercatorGrid(nlat, nlon int, latSouthDeg, latNorthDeg float64) *Grid {
	lats := MercatorLatitudes(nlat, latSouthDeg*Deg2Rad, latNorthDeg*Deg2Rad)
	return NewGrid(lats, UniformLongitudes(nlon))
}

// NLat and NLon return the grid dimensions.
func (g *Grid) NLat() int { return len(g.Lats) }
func (g *Grid) NLon() int { return len(g.Lons) }

// Size returns the number of cells.
func (g *Grid) Size() int { return len(g.Lats) * len(g.Lons) }

// Index returns the row-major cell index of (j,i).
func (g *Grid) Index(j, i int) int { return j*len(g.Lons) + i }

// Area returns the area of cell (j,i) in m^2.
//
//foam:units return=m^2
func (g *Grid) Area(j, i int) float64 { return g.area[g.Index(j, i)] }

// TotalArea returns the summed cell area. For a grid whose latitude edges
// span pole to pole this equals the area of the sphere.
//
//foam:units return=m^2
func (g *Grid) TotalArea() float64 {
	tot := 0.0
	for _, a := range g.area {
		tot += a
	}
	return tot
}

// AreaMean returns the area-weighted mean of a row-major field on the grid.
func (g *Grid) AreaMean(field []float64) float64 {
	if len(field) != g.Size() {
		panic("sphere: AreaMean field size mismatch")
	}
	num, den := 0.0, 0.0
	for k, v := range field {
		num += v * g.area[k]
		den += g.area[k]
	}
	return num / den
}

// AreaMeanMasked returns the area-weighted mean over cells where mask is
// true. It returns 0 when the mask is empty.
func (g *Grid) AreaMeanMasked(field []float64, mask []bool) float64 {
	if len(field) != g.Size() || len(mask) != g.Size() {
		panic("sphere: AreaMeanMasked size mismatch")
	}
	num, den := 0.0, 0.0
	for k, v := range field {
		if mask[k] {
			num += v * g.area[k]
			den += g.area[k]
		}
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// GreatCircle returns the great-circle distance in metres between two
// points given in radians.
func GreatCircle(lat1, lon1, lat2, lon2 float64) float64 {
	s1 := math.Sin((lat2 - lat1) / 2)
	s2 := math.Sin((lon2 - lon1) / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * Radius * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Coriolis returns the Coriolis parameter f = 2*Omega*sin(lat) at a
// latitude in radians.
func Coriolis(lat float64) float64 { return 2 * Omega * math.Sin(lat) }

// WrapLon normalizes a longitude in radians to [0, 2*pi).
func WrapLon(lon float64) float64 {
	lon = math.Mod(lon, 2*math.Pi)
	if lon < 0 {
		lon += 2 * math.Pi
	}
	return lon
}
