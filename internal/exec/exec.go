// Package exec provides the interchangeable executor backends that run a
// compiled sched.Program over a set of components:
//
//   - Serial interprets the program op-by-op on the calling goroutine —
//     the reference semantics.
//   - Pooled is Serial plus a shared-memory worker pool attached to every
//     PoolAware component, today's multi-core path.
//   - Ranked (ranked.go) places each component's group on internal/mp
//     ranks, runs the program as per-rank projections exchanging typed
//     messages, and — with a lagged schedule — genuinely overlaps the slow
//     component's step with the fast component's next interval.
//
// Every backend executes the identical op sequence per tick (transfers
// included), so all three are bit-identical for any worker or rank count;
// the executor equivalence matrix in internal/core pins this exactly.
package exec

import (
	"fmt"

	"foam/internal/pool"
	"foam/internal/sched"
)

// Executor advances a compiled program over its components. Executors are
// not safe for concurrent use; one goroutine drives Steps. They may,
// however, migrate between goroutines across calls: a caller that
// establishes a happens-before edge between consecutive Steps calls (the
// ensemble scheduler hands members to pool workers under a mutex) gets the
// same trajectory as a single driving goroutine, because executors keep no
// goroutine-affine state.
type Executor interface {
	// Steps runs n consecutive ticks of the program.
	Steps(n int)
	// Tick returns the number of ticks completed since construction/Seek.
	Tick() int
	// Seek positions the executor at global tick t (e.g. after a
	// checkpoint restore mid-coupling-interval), without running anything.
	Seek(t int)
	// Close releases executor-owned resources (pools, rank plumbing) and
	// detaches them from the components. The executor must be idle.
	Close()
}

// planOp is one program op with its transfer buffers resolved, so the
// steady-state interpreter loop allocates nothing.
type planOp struct {
	kind     sched.OpKind
	comp     int
	src, dst int
	fields   []sched.Field
	bufs     [][]float64
}

// interp is the shared serial program interpreter.
type interp struct {
	prog  *sched.Program
	comps []sched.Component
	plan  [][]planOp
}

func newInterp(prog *sched.Program, comps []sched.Component) *interp {
	in := &interp{prog: prog, comps: comps}
	in.plan = make([][]planOp, prog.Period)
	for t := range in.plan {
		ops := prog.Ticks[t]
		po := make([]planOp, len(ops))
		for i, op := range ops {
			po[i] = planOp{kind: op.Kind, comp: op.Comp, src: op.Src, dst: op.Dst, fields: op.Fields}
			if op.Kind == sched.OpXfer {
				po[i].bufs = make([][]float64, len(op.Fields))
				for fi, f := range op.Fields {
					po[i].bufs[fi] = make([]float64, comps[op.Src].FieldLen(f))
				}
			}
		}
		in.plan[t] = po
	}
	return in
}

// runTick executes one tick's ops in program order.
//
//foam:hotpath
func (in *interp) runTick(t int) {
	ops := in.plan[t%in.prog.Period]
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case sched.OpStep:
			in.comps[op.comp].Step()
		case sched.OpCouple:
			in.comps[op.comp].Couple(in.prog.CoupleDt)
		case sched.OpXfer:
			for fi, f := range op.fields {
				in.comps[op.src].ExportInto(op.bufs[fi], f)
				in.comps[op.dst].Import(f, op.bufs[fi])
			}
		}
	}
}

// Serial runs the program on the calling goroutine — the reference
// executor every other backend must match bit-for-bit.
type Serial struct {
	in   *interp
	tick int
}

// NewSerial builds the serial executor.
func NewSerial(prog *sched.Program, comps []sched.Component) *Serial {
	return &Serial{in: newInterp(prog, comps)}
}

// Steps runs n ticks.
//
//foam:hotpath
func (s *Serial) Steps(n int) {
	for i := 0; i < n; i++ {
		s.in.runTick(s.tick)
		s.tick++
	}
}

// Tick returns the current global tick.
func (s *Serial) Tick() int { return s.tick }

// Seek positions the executor at global tick t.
func (s *Serial) Seek(t int) { s.tick = t }

// Close is a no-op; Serial owns no resources.
func (s *Serial) Close() {}

// Pooled is the shared-memory backend: the serial interpreter with a
// deterministic worker pool attached to every PoolAware component, so each
// op runs its internal phases across the pool while the op order — and
// therefore the numerics — stay exactly serial.
type Pooled struct {
	Serial
	pool *pool.Pool
}

// NewPooled builds the pooled executor with the given worker count
// (0 = GOMAXPROCS). With an effective worker count of 1 it degenerates to
// the serial executor.
func NewPooled(prog *sched.Program, comps []sched.Component, workers int) *Pooled {
	p := &Pooled{Serial: Serial{in: newInterp(prog, comps)}}
	pl := pool.New(workers)
	if pl.Workers() > 1 {
		p.pool = pl
		for _, c := range comps {
			if pa, ok := c.(sched.PoolAware); ok {
				pa.SetPool(pl)
			}
		}
	} else {
		pl.Close()
	}
	return p
}

// Workers returns the attached pool's worker count (1 when degenerate).
func (p *Pooled) Workers() int {
	if p.pool == nil {
		return 1
	}
	return p.pool.Workers()
}

// Close detaches and stops the pool.
func (p *Pooled) Close() {
	if p.pool == nil {
		return
	}
	for _, c := range p.in.comps {
		if pa, ok := c.(sched.PoolAware); ok {
			pa.SetPool(nil)
		}
	}
	p.pool.Close()
	p.pool = nil
}

// validateGroups checks a rank-group layout against the component list.
func validateGroups(groups []int, ncomps int) error {
	if len(groups) != ncomps {
		return fmt.Errorf("exec: %d rank groups for %d components", len(groups), ncomps)
	}
	for i, g := range groups {
		if g < 1 {
			return fmt.Errorf("exec: component %d needs at least one rank", i)
		}
	}
	return nil
}
