package exec

import (
	"fmt"
	"sync/atomic"

	"foam/internal/mp"
	"foam/internal/pool"
	"foam/internal/sched"
)

// Message tags for the ranked executor. Field transfers use tagXfer plus
// the field's index within its transfer op; the member-dispatch protocol
// uses tagRankCmd/tagRankDone. All are positive, so they cannot collide
// with mp's negative collective tags.
const (
	tagXfer     = 100
	tagRankCmd  = 900
	tagRankDone = 901
)

// Member-dispatch command codes (first element of a tagRankCmd payload).
const (
	cmdExit  = 0 // leave the serve loop; the world is shutting down
	cmdPhase = 1 // run one pool phase: payload is [cmdPhase, n, nw]
	cmdTrace = 2 // traced mode: charge this tick's modeled cost
)

// TraceModel supplies the virtual-time cost model for a traced ranked run.
// The executor runs the real model serially on each component's lead rank
// (under the mp exclusivity token, so wall-clock cost traces stay clean)
// and asks the TraceModel to convert the measured costs into per-rank
// virtual-clock charges and communication patterns.
type TraceModel interface {
	// StageTick is called on component ci's lead right after the tick's
	// real compute ops ran: return the tick's measured costs as a flat
	// vector. The executor copies the vector into the command message it
	// sends each group member, so members read private copies and the lead
	// may reuse the backing array next tick.
	StageTick(ci int) []float64
	// TraceTick is called on every rank of component ci's group — w is the
	// rank's index within the group, g the group communicator (identical
	// membership on every caller), costs the vector StageTick returned for
	// this tick. It charges the rank's share of the tick via
	// g.AdvanceClock and models intra-group communication (transposes,
	// halo exchanges) with real mp collectives.
	TraceTick(ci, w int, g *mp.Comm, costs []float64)
}

// RankedSpec places the components on mp ranks.
type RankedSpec struct {
	// Groups[ci] is the number of ranks component ci occupies; groups are
	// contiguous and the first rank of each group is its lead. In the
	// paper's layout the atmosphere (with the co-resident coupler) takes
	// 16 ranks and the ocean one.
	Groups []int
	// Link is the simulated interconnect (zero value: mp.DefaultLink).
	Link mp.LinkParams
	// Trace enables the parallel-machine simulation: real stepping runs
	// serially on the leads and Model charges modeled virtual time to
	// every rank, producing the per-rank timelines behind Figure 2.
	Trace bool
	// Model is the cost model; required when Trace is set.
	Model TraceModel
}

// rankPool is a pool.Runner that spreads a phase over one component
// group's mp ranks: the lead stages the phase function, wakes each member
// with a cmdPhase message (the mailbox lock is the happens-before edge for
// the staged fields), runs its own pool.Block share as worker 0, and
// collects one done message per member as the barrier. Determinism is
// inherited from the pool contract — the Block split depends only on
// (n, group size) — so a ranked group is bit-identical to a shared-memory
// pool of the same worker count, which is itself bit-identical to serial.
type rankPool struct {
	size    int   // group size = worker count
	members []int // world ranks of the non-lead members
	c       *mp.Comm
	busy    atomic.Bool
	fn      func(worker, lo, hi int)
	cmd     [3]float64
}

// Workers returns the group size.
func (rp *rankPool) Workers() int { return rp.size }

// Run dispatches one phase across the group. Serial cases — a 1-rank
// group, n <= 1, no world attached, or a nested Run from inside a phase —
// execute fn(0, 0, n) inline, exactly like pool.Pool.Run.
//
//foam:hotphases
func (rp *rankPool) Run(n int, fn func(worker, lo, hi int)) {
	if rp.size == 1 || n <= 1 || rp.c == nil || !rp.busy.CompareAndSwap(false, true) {
		fn(0, 0, n)
		return
	}
	defer rp.busy.Store(false)
	nw := rp.size
	if nw > n {
		nw = n
	}
	rp.fn = fn
	rp.cmd = [3]float64{cmdPhase, float64(n), float64(nw)}
	for _, m := range rp.members {
		rp.c.Send(m, tagRankCmd, rp.cmd[:])
	}
	if lo, hi := pool.Block(n, 0, nw); lo < hi {
		fn(0, lo, hi)
	}
	for _, m := range rp.members {
		rp.c.Recv(m, tagRankDone)
	}
	rp.fn = nil
}

// Ranked runs the program with each component's group on its own
// internal/mp ranks: component steps execute on their lead rank (spread
// over the group members through a rankPool), and coupling transfers move
// between leads as typed messages. Because each lead executes its
// projection of the tick op list in program order and every transfer is a
// blocking dataflow edge, the result is bit-identical to the Serial
// executor for any rank layout — while a lagged schedule lets the slow
// component's step genuinely overlap the fast component's next interval.
type Ranked struct {
	in       *interp
	spec     RankedSpec
	comps    []sched.Component
	groups   [][]int
	leads    []int
	total    int
	pools    []*rankPool
	lastComp [][]int // [ci][tickInPeriod] index of the tick's last Step/Couple op, -1 if none
	tick     int
	comms    []*mp.Comm
}

// NewRanked builds the ranked executor. In untraced mode it attaches a
// rankPool to every PoolAware component with a multi-rank group; in traced
// mode components step serially on their leads and spec.Model supplies the
// virtual-time charges.
func NewRanked(prog *sched.Program, comps []sched.Component, spec RankedSpec) (*Ranked, error) {
	if err := validateGroups(spec.Groups, len(comps)); err != nil {
		return nil, err
	}
	if spec.Trace && spec.Model == nil {
		return nil, fmt.Errorf("exec: traced ranked executor needs a TraceModel")
	}
	if !(spec.Link.Bandwidth > 0) {
		spec.Link = mp.DefaultLink
	}
	r := &Ranked{in: newInterp(prog, comps), spec: spec, comps: comps}
	r.groups = make([][]int, len(comps))
	r.leads = make([]int, len(comps))
	next := 0
	for ci, g := range spec.Groups {
		ranks := make([]int, g)
		for i := range ranks {
			ranks[i] = next + i
		}
		r.groups[ci] = ranks
		r.leads[ci] = next
		next += g
	}
	r.total = next

	r.pools = make([]*rankPool, len(comps))
	if !spec.Trace {
		for ci, c := range comps {
			if len(r.groups[ci]) < 2 {
				continue
			}
			if pa, ok := c.(sched.PoolAware); ok {
				r.pools[ci] = &rankPool{size: len(r.groups[ci]), members: r.groups[ci][1:]}
				pa.SetPool(r.pools[ci])
			}
		}
	}

	r.lastComp = make([][]int, len(comps))
	for ci := range comps {
		r.lastComp[ci] = make([]int, prog.Period)
		for t := 0; t < prog.Period; t++ {
			r.lastComp[ci][t] = -1
			for i, op := range prog.Ticks[t] {
				if (op.Kind == sched.OpStep || op.Kind == sched.OpCouple) && op.Comp == ci {
					r.lastComp[ci][t] = i
				}
			}
		}
	}
	return r, nil
}

// Steps runs n ticks on a fresh mp world (component state lives in shared
// memory, so worlds are cheap per call and everything quiesces at the join
// barrier between calls). In traced mode the world's per-rank timelines
// are retained for Comms.
func (r *Ranked) Steps(n int) {
	if n <= 0 {
		return
	}
	opts := []mp.Option{mp.WithLink(r.spec.Link)}
	if !r.spec.Trace {
		opts = append(opts, mp.WithoutTrace())
	}
	world := mp.NewWorld(r.total, opts...)
	r.comms = world.Run(func(c *mp.Comm) {
		ci, w := r.place(c.WorldRank())
		if w == 0 {
			r.leadRun(c, ci, n)
		} else {
			r.serve(c, ci, w)
		}
	})
	r.tick += n
}

// place maps a world rank to its (component, index-within-group).
func (r *Ranked) place(rank int) (ci, w int) {
	for ci, ranks := range r.groups {
		if rank < ranks[0]+len(ranks) {
			return ci, rank - ranks[0]
		}
	}
	panic("exec: rank outside every group")
}

// Tick returns the current global tick.
func (r *Ranked) Tick() int { return r.tick }

// Seek positions the executor at global tick t.
func (r *Ranked) Seek(t int) { r.tick = t }

// Comms returns the per-rank communicators of the most recent Steps call
// (carrying the virtual timelines in traced mode), in world-rank order:
// component 0's group first.
func (r *Ranked) Comms() []*mp.Comm { return r.comms }

// Close detaches the rank pools from the components.
func (r *Ranked) Close() {
	for ci, rp := range r.pools {
		if rp == nil {
			continue
		}
		if pa, ok := r.comps[ci].(sched.PoolAware); ok {
			pa.SetPool(nil)
		}
		r.pools[ci] = nil
	}
}

// leadRun executes n ticks of component ci's projection of the program on
// its lead rank, then shuts the group's members down.
func (r *Ranked) leadRun(c *mp.Comm, ci, n int) {
	gc := c.Split(r.groups[ci])
	if rp := r.pools[ci]; rp != nil {
		rp.c = c
	}
	for k := 0; k < n; k++ {
		t := r.tick + k
		tp := t % r.in.prog.Period
		if r.spec.Trace {
			r.leadTickTraced(c, gc, ci, tp)
		} else {
			r.leadTick(c, ci, tp)
		}
	}
	for _, m := range r.groups[ci][1:] {
		c.Send(m, tagRankCmd, []float64{cmdExit, 0, 0})
	}
}

// leadTick is the untraced per-tick exchange loop: execute own compute
// ops in program order; outgoing transfers export and send, incoming
// transfers receive and import. The blocking receives are the dataflow
// edges that order cross-component mutations exactly as the serial
// interpreter does.
//
//foam:hotphases
func (r *Ranked) leadTick(c *mp.Comm, ci, tp int) {
	ops := r.in.plan[tp]
	for i := range ops {
		op := &ops[i]
		switch {
		case op.kind == sched.OpStep && op.comp == ci:
			r.comps[ci].Step()
		case op.kind == sched.OpCouple && op.comp == ci:
			r.comps[ci].Couple(r.in.prog.CoupleDt)
		case op.kind == sched.OpXfer && op.src == ci:
			for fi, f := range op.fields {
				r.comps[ci].ExportInto(op.bufs[fi], f)
				c.Send(r.leads[op.dst], tagXfer+fi, op.bufs[fi])
			}
		case op.kind == sched.OpXfer && op.dst == ci:
			for fi, f := range op.fields {
				r.comps[ci].Import(f, c.Recv(r.leads[op.src], tagXfer+fi))
			}
		}
	}
}

// leadTickTraced is the traced variant: real compute ops run under the
// world's exclusivity token (wall-clock purity on a shared host) and do
// not advance the virtual clock; right after the tick's last compute op,
// the lead stages the measured costs, wakes the group members — the
// command's send time is the lead's unchanged tick-start clock, so the
// whole group charges the tick in virtual parallel — and charges its own
// share through the TraceModel. Transfers move the real payloads between
// leads, so coupling waits shape the virtual timelines exactly as real
// messages would.
func (r *Ranked) leadTickTraced(c, gc *mp.Comm, ci, tp int) {
	ops := r.in.plan[tp]
	last := r.lastComp[ci][tp]
	for i := range ops {
		op := &ops[i]
		switch {
		case op.kind == sched.OpStep && op.comp == ci:
			c.Exclusive(r.comps[ci].Step)
		case op.kind == sched.OpCouple && op.comp == ci:
			c.Exclusive(func() { r.comps[ci].Couple(r.in.prog.CoupleDt) })
		case op.kind == sched.OpXfer && op.src == ci:
			for fi, f := range op.fields {
				r.comps[ci].ExportInto(op.bufs[fi], f)
				c.Send(r.leads[op.dst], tagXfer+fi, op.bufs[fi])
			}
		case op.kind == sched.OpXfer && op.dst == ci:
			for fi, f := range op.fields {
				r.comps[ci].Import(f, c.Recv(r.leads[op.src], tagXfer+fi))
			}
		default:
			continue
		}
		if i == last && (op.kind == sched.OpStep || op.kind == sched.OpCouple) {
			costs := r.spec.Model.StageTick(ci)
			msg := make([]float64, 1+len(costs))
			msg[0] = cmdTrace
			copy(msg[1:], costs)
			for _, m := range r.groups[ci][1:] {
				c.Send(m, tagRankCmd, msg)
			}
			r.spec.Model.TraceTick(ci, 0, gc, costs)
		}
	}
}

// serve is the member loop: wait for lead commands, run pool-phase block
// shares (worker w of the group) or traced tick charges, until exit.
//
//foam:hotphases
func (r *Ranked) serve(c *mp.Comm, ci, w int) {
	gc := c.Split(r.groups[ci])
	lead := r.leads[ci]
	rp := r.pools[ci]
	for {
		cmd := c.Recv(lead, tagRankCmd)
		switch int(cmd[0]) {
		case cmdExit:
			return
		case cmdPhase:
			n, nw := int(cmd[1]), int(cmd[2])
			if w < nw {
				if lo, hi := pool.Block(n, w, nw); lo < hi {
					rp.fn(w, lo, hi)
				}
			}
			c.Send(lead, tagRankDone, nil)
		case cmdTrace:
			r.spec.Model.TraceTick(ci, w, gc, cmd[1:])
		}
	}
}
