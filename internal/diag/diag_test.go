package diag

import (
	"strings"
	"testing"

	"foam/internal/mp"
	"foam/internal/sphere"
)

func traceWorld() []*mp.Comm {
	w := mp.NewWorld(3)
	return w.Run(func(c *mp.Comm) {
		switch c.Rank() {
		case 0:
			c.AdvanceClock("atmosphere", 2)
			c.AdvanceClock("coupler", 0.5)
		case 1:
			c.AdvanceClock("atmosphere", 1)
			c.AdvanceClock("idle", 1.5)
		case 2:
			c.AdvanceClock("ocean", 1)
			c.AdvanceClock("idle", 1.5)
		}
	})
}

func TestGanttRendersAllRanks(t *testing.T) {
	var sb strings.Builder
	comms := traceWorld()
	Gantt(&sb, comms, 60)
	out := sb.String()
	for _, want := range []string{"rank  0", "rank  1", "rank  2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in gantt output:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "O") ||
		!strings.Contains(out, "C") || !strings.Contains(out, ".") {
		t.Fatalf("missing activity symbols:\n%s", out)
	}
	// Rank 0's row must be mostly 'A' (2 of 2.5 seconds).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "rank  0") {
			a := strings.Count(line, "A")
			c := strings.Count(line, "C")
			if a <= c {
				t.Fatalf("rank 0 should be atmosphere-dominated: %s", line)
			}
		}
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	var sb strings.Builder
	w := mp.NewWorld(1)
	comms := w.Run(func(c *mp.Comm) {})
	Gantt(&sb, comms, 60)
	if !strings.Contains(sb.String(), "empty trace") {
		t.Fatalf("expected empty-trace message, got %q", sb.String())
	}
}

func TestSegmentTotals(t *testing.T) {
	tot := SegmentTotals(traceWorld())
	if tot["atmosphere"] != 3 {
		t.Fatalf("atmosphere total %v", tot["atmosphere"])
	}
	if tot["idle"] != 3 {
		t.Fatalf("idle total %v", tot["idle"])
	}
	if tot["ocean"] != 1 || tot["coupler"] != 0.5 {
		t.Fatalf("totals %v", tot)
	}
	var sb strings.Builder
	PrintSegmentTable(&sb, traceWorld())
	if !strings.Contains(sb.String(), "atmosphere") {
		t.Fatal("segment table missing labels")
	}
}

func TestAsciiMapMasksAndRange(t *testing.T) {
	g := sphere.NewGaussianGrid(8, 16)
	field := make([]float64, g.Size())
	mask := make([]bool, g.Size())
	for j := 0; j < 8; j++ {
		for i := 0; i < 16; i++ {
			c := g.Index(j, i)
			field[c] = float64(j)
			mask[c] = i%2 == 0
		}
	}
	var sb strings.Builder
	AsciiMap(&sb, g, field, mask, 16, "test")
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "[0.00 .. 7.00]") {
		t.Fatalf("range annotation missing: %s", out)
	}
	// Masked columns should appear as spaces inside the border.
	if !strings.Contains(out, " ") {
		t.Fatal("no masked cells rendered")
	}
}

func TestAsciiMapConstantField(t *testing.T) {
	g := sphere.NewGaussianGrid(8, 16)
	field := make([]float64, g.Size())
	for c := range field {
		field[c] = 5
	}
	var sb strings.Builder
	AsciiMap(&sb, g, field, nil, 16, "flat") // must not divide by zero
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestCSVTable(t *testing.T) {
	var sb strings.Builder
	CSVTable(&sb, []string{"a", "b"}, [][]float64{{1, 2}, {3.5, -4}})
	want := "a,b\n1,2\n3.5,-4\n"
	if sb.String() != want {
		t.Fatalf("csv output %q want %q", sb.String(), want)
	}
}

func TestWritePGM(t *testing.T) {
	g := sphere.NewGaussianGrid(8, 16)
	field := make([]float64, g.Size())
	mask := make([]bool, g.Size())
	for c := range field {
		field[c] = float64(c)
		mask[c] = c%3 != 0
	}
	var sb strings.Builder
	if err := WritePGM(&sb, g, field, mask); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P5\n16 8\n255\n") {
		t.Fatalf("bad PGM header: %q", out[:20])
	}
	if len(out) != len("P5\n16 8\n255\n")+8*16 {
		t.Fatalf("bad PGM size: %d", len(out))
	}
}
