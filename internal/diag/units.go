package diag

import "fmt"

// Units maps diagnostic quantity names — the field names of
// ocean.Diagnostics and atmos.StepDiagnostics — to the unit each quantity
// is reported in. The strings are the same unit expressions declared by the
// //foam:units annotations on those structs, so the printed headers and the
// statically checked annotations cannot drift apart:
// TestDiagUnitsMatchAnnotations in internal/analysis parses the source
// pragmas and fails if any entry here disagrees (or is missing, or names a
// field that no longer exists).
var Units = map[string]string{
	// ocean.Diagnostics
	"MeanSST":   "degC",
	"MeanEta":   "m",
	"MaxSpeed":  "m/s",
	"MeanKE":    "m^2/s^2",
	"IceFlux":   "kg/m^2/s",
	"TotalHeat": "degC*m^3",
	"TotalSalt": "psu*m^3",
	// atmos.StepDiagnostics
	"MeanPs":      "Pa",
	"MeanT":       "K",
	"MaxWind":     "m/s",
	"PrecipMean":  "kg/m^2/s",
	"EvapMean":    "kg/m^2/s",
	"KineticMean": "m^2/s^2",
}

// Unit returns the unit string of a diagnostic quantity, or "" when the
// quantity is dimensionless or unknown.
func Unit(name string) string { return Units[name] }

// ColumnLabel renders a diagnostic column header as "name [unit]", or the
// bare name for dimensionless quantities.
func ColumnLabel(name string) string {
	if u := Units[name]; u != "" {
		return fmt.Sprintf("%s [%s]", name, u)
	}
	return name
}

// ColumnHeaders maps quantity names through ColumnLabel, for CSVTable and
// friends.
func ColumnHeaders(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = ColumnLabel(n)
	}
	return out
}
