// Package diag renders FOAM-Go diagnostics: the per-processor time
// allocation chart of the paper's Figure 2 (as ASCII), latitude-longitude
// field maps (Figures 3 and 4) as ASCII contour plots or PGM images, and
// CSV tables for the benchmark harness.
//
//foam:deterministic
package diag

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"foam/internal/mp"
	"foam/internal/sphere"
)

// GanttSymbols maps trace labels to the single characters used in the
// ASCII Figure-2 chart. The paper's colors: green = atmosphere, red =
// coupler, blue = ocean, purple = idle.
var GanttSymbols = map[string]byte{
	"atmosphere": 'A',
	"coupler":    'C',
	"ocean":      'O',
	"idle":       '.',
}

// Gantt renders the per-rank virtual timelines as an ASCII chart of the
// given width. Each row is one rank; each column a time slice labelled by
// the activity occupying most of it.
func Gantt(w io.Writer, comms []*mp.Comm, width int) {
	tEnd := mp.MaxClock(comms)
	if tEnd <= 0 || width < 10 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	fmt.Fprintf(w, "Time allocation per rank (total %.3f s simulated-machine time)\n", tEnd)
	fmt.Fprintf(w, "  legend: A=atmosphere C=coupler O=ocean .=idle\n")
	row := make([]byte, width)
	for r, c := range comms {
		for i := range row {
			row[i] = ' '
		}
		for _, seg := range c.Segments() {
			sym, ok := GanttSymbols[seg.Label]
			if !ok {
				sym = '?'
			}
			i0 := int(seg.Start / tEnd * float64(width))
			i1 := int(seg.End / tEnd * float64(width))
			if i1 >= width {
				i1 = width - 1
			}
			for i := i0; i <= i1 && i < width; i++ {
				row[i] = sym
			}
		}
		fmt.Fprintf(w, "rank %2d |%s|\n", r, string(row))
	}
}

// SegmentTotals sums virtual time per label across all ranks.
func SegmentTotals(comms []*mp.Comm) map[string]float64 {
	tot := map[string]float64{}
	for _, c := range comms {
		for _, s := range c.Segments() {
			tot[s.Label] += s.End - s.Start
		}
	}
	return tot
}

// SegmentLabels returns the distinct segment labels across all ranks in
// sorted order. Labels are collected in segment order, never by iterating
// a map, so every quantity accumulated in this order is deterministic.
func SegmentLabels(comms []*mp.Comm) []string {
	seen := map[string]bool{}
	var labels []string
	for _, c := range comms {
		for _, s := range c.Segments() {
			if !seen[s.Label] {
				seen[s.Label] = true
				labels = append(labels, s.Label)
			}
		}
	}
	sort.Strings(labels)
	return labels
}

// PrintSegmentTable writes per-label totals and fractions.
func PrintSegmentTable(w io.Writer, comms []*mp.Comm) {
	tot := SegmentTotals(comms)
	labels := SegmentLabels(comms)
	sum := 0.0
	for _, l := range labels {
		sum += tot[l]
	}
	fmt.Fprintf(w, "%-12s %12s %8s\n", "activity", "rank-seconds", "share")
	for _, l := range labels {
		fmt.Fprintf(w, "%-12s %12.4f %7.1f%%\n", l, tot[l], 100*tot[l]/sum)
	}
}

// shades orders characters from low to high for ASCII maps.
const shades = " .:-=+*#%@"

// AsciiMap renders a row-major field on a grid as an ASCII map (north at
// the top), masking cells where mask is false (printed as spaces when a
// mask is given). Rows/columns are subsampled to fit width.
func AsciiMap(w io.Writer, g *sphere.Grid, field []float64, mask []bool, width int, title string) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for c, v := range field {
		if mask != nil && !mask[c] {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo >= hi {
		hi = lo + 1
	}
	fmt.Fprintf(w, "%s  [%.2f .. %.2f]\n", title, lo, hi)
	nlat, nlon := g.NLat(), g.NLon()
	if width > nlon {
		width = nlon
	}
	height := width * nlat / nlon / 2 // terminal cells are ~2:1
	if height < 8 {
		height = min(nlat, 8)
	}
	for r := 0; r < height; r++ {
		j := (height - 1 - r) * (nlat - 1) / max(height-1, 1) // north on top
		var sb strings.Builder
		for x := 0; x < width; x++ {
			i := x * (nlon - 1) / max(width-1, 1)
			c := g.Index(j, i)
			if mask != nil && !mask[c] {
				sb.WriteByte(' ')
				continue
			}
			f := (field[c] - lo) / (hi - lo)
			idx := int(f * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteByte(shades[idx])
		}
		fmt.Fprintf(w, "|%s|\n", sb.String())
	}
}

// CSVTable writes rows of named columns as CSV.
func CSVTable(w io.Writer, header []string, rows [][]float64) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = fmt.Sprintf("%g", v)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

// WritePGM renders a field as a binary PGM image (portable graymap), north
// at the top, masked cells black. A lightweight way to produce the actual
// Figure-3 style images without image dependencies.
func WritePGM(w io.Writer, g *sphere.Grid, field []float64, mask []bool) error {
	nlat, nlon := g.NLat(), g.NLon()
	lo, hi := math.Inf(1), math.Inf(-1)
	for c, v := range field {
		if mask != nil && !mask[c] {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo >= hi {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", nlon, nlat); err != nil {
		return err
	}
	row := make([]byte, nlon)
	for j := nlat - 1; j >= 0; j-- {
		for i := 0; i < nlon; i++ {
			c := g.Index(j, i)
			if mask != nil && !mask[c] {
				row[i] = 0
				continue
			}
			f := (field[c] - lo) / (hi - lo)
			row[i] = byte(25 + f*230)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// SavePGM writes the image to a file path.
func SavePGM(path string, g *sphere.Grid, field []float64, mask []bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WritePGM(f, g, field, mask)
}
