package foam

import (
	"math"
	"testing"
)

func TestPublicAPISmoke(t *testing.T) {
	m, err := New(ReducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.StepDays(1)
	d := m.Diagnostics()
	if math.IsNaN(d.Atm.MeanT) || math.IsNaN(d.Ocn.MeanSST) {
		t.Fatal("NaN diagnostics after one day")
	}
	if len(m.SST()) != m.Ocn.Grid().Size() {
		t.Fatal("SST size mismatch")
	}
}

func TestCompareSSTSelf(t *testing.T) {
	m, err := New(ReducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Comparing the climatology against itself must give zero error.
	obs := m.CompareSST(m.CompareSST(m.SST()).Observed)
	if obs.RMSE > 1e-12 || math.Abs(obs.Bias) > 1e-12 {
		t.Fatalf("self comparison: bias %v rmse %v", obs.Bias, obs.RMSE)
	}
	if math.Abs(obs.PatternCorr-1) > 1e-12 {
		t.Fatalf("self correlation %v", obs.PatternCorr)
	}
}

func TestAnalyzeVariabilitySynthetic(t *testing.T) {
	m, err := New(ReducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := m.Ocn.Grid()
	mask := m.Ocn.Mask()
	// Synthetic series with a planted two-basin mode plus noise.
	nT := 48
	series := make([][]float64, nT)
	pattern := make([]float64, g.Size())
	for j := 0; j < g.NLat(); j++ {
		for i := 0; i < g.NLon(); i++ {
			c := g.Index(j, i)
			if mask[c] > 0 && g.Lats[j] > 0.4 {
				pattern[c] = 1 // northern-hemisphere loading in both basins
			}
		}
	}
	for ti := 0; ti < nT; ti++ {
		pc := math.Sin(2 * math.Pi * float64(ti) / 36)
		row := make([]float64, g.Size())
		for c := range row {
			if mask[c] > 0 {
				row[c] = 15 + pc*pattern[c] + 0.01*math.Sin(float64(c+ti))
			}
		}
		series[ti] = row
	}
	res, err := AnalyzeVariability(g, mask, series, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.VarFrac < 0.5 {
		t.Fatalf("planted mode explains only %v", res.VarFrac)
	}
	if res.BasinCorr <= 0 {
		t.Fatalf("two-basin loading should be positive for the planted mode: %v", res.BasinCorr)
	}
}

func TestTracedRunShortConsistency(t *testing.T) {
	res, m, err := RunTraced(ReducedConfig(), 0.25, ParallelSpec{AtmRanks: 4, OcnRanks: 1, Link: SPLink})
	if err != nil {
		t.Fatal(err)
	}
	if res.MachineTime <= 0 || res.Speedup <= 0 {
		t.Fatalf("bad trace result %+v", res)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1.001 {
		t.Fatalf("efficiency out of range: %v", res.Efficiency)
	}
	if m.StepCount() == 0 {
		t.Fatal("model did not advance")
	}
	if len(res.Comms) != 5 {
		t.Fatalf("expected 5 rank timelines, got %d", len(res.Comms))
	}
}
