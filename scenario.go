package foam

import (
	"fmt"

	"foam/internal/scenario"
)

// ScenarioNames lists the named scenarios of the registry — the model
// hierarchy from the paper's full coupled FOAM down to aquaplanet and
// slab-ocean idealizations (internal/scenario, DESIGN.md section 17).
func ScenarioNames() []string { return scenario.Names() }

// ScenarioConfig compiles a named registry scenario into a Config. It is
// the declarative way to pick a model from the hierarchy:
//
//	cfg, err := foam.ScenarioConfig("aquaplanet")
//	m, err := foam.New(cfg)
func ScenarioConfig(name string) (Config, error) {
	sp, ok := scenario.Lookup(name)
	if !ok {
		return Config{}, fmt.Errorf("foam: unknown scenario %q (have %v)", name, scenario.Names())
	}
	return scenario.Build(sp)
}
