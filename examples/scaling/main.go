// Scaling: reproduce the flavor of the paper's Figure 2 and Section 5 —
// run the coupled model on the traced Ranked executor, which places the
// atmosphere (+ coupler) and ocean groups on simulated message-passing
// ranks, and print the per-rank time allocation and the throughput table.
// The final section shows the paper's headline scheduling idea: with lagged
// coupling (OceanLag=1) the ocean step overlaps the next interval's
// atmosphere steps instead of serializing with them.
package main

import (
	"fmt"
	"os"

	"foam"
	"foam/internal/diag"
	"foam/internal/mp"
)

func main() {
	cfg, err := foam.ScenarioConfig("r5-quick")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("=== Figure 2: time allocation, 8 atmosphere ranks + 1 ocean rank ===")
	res, _, err := foam.RunTraced(cfg, 1.0, foam.ParallelSpec{AtmRanks: 8, OcnRanks: 1, Link: foam.SPLink})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diag.Gantt(os.Stdout, res.Comms, 100)
	diag.PrintSegmentTable(os.Stdout, res.Comms)

	fmt.Println("\n=== Throughput vs machine size ===")
	fmt.Printf("%8s %8s %12s %12s\n", "atm", "ocn", "speedup", "efficiency")
	for _, spec := range []foam.ParallelSpec{
		{AtmRanks: 2, OcnRanks: 1, Link: mp.SPLink},
		{AtmRanks: 4, OcnRanks: 1, Link: mp.SPLink},
		{AtmRanks: 8, OcnRanks: 1, Link: mp.SPLink},
		{AtmRanks: 16, OcnRanks: 2, Link: mp.SPLink},
	} {
		r, _, err := foam.RunTraced(cfg, 0.5, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("%8d %8d %11.0fx %11.2f\n", spec.AtmRanks, spec.OcnRanks, r.Speedup, r.Efficiency)
	}

	fmt.Println("\n=== Lagged coupling: overlapping the ocean with the atmosphere ===")
	fmt.Printf("%6s %12s %12s\n", "lag", "speedup", "efficiency")
	for _, lag := range []int{0, 1} {
		lc := cfg
		lc.OceanLag = lag
		r, _, err := foam.RunTraced(lc, 0.5, foam.ParallelSpec{AtmRanks: 8, OcnRanks: 1, Link: foam.SPLink})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("%6d %11.0fx %11.2f\n", lag, r.Speedup, r.Efficiency)
	}
}
