// Watercycle: demonstrate the closed hydrological cycle of the paper's
// Section 4.3 — precipitation fills the soil bucket, overflow is routed
// down synthetic rivers at 0.35 m/s, and mouths inject fresh water into the
// ocean; the budget closes to numerical precision.
package main

import (
	"fmt"
	"os"

	"foam"
)

func main() {
	m, err := foam.New(foam.ReducedConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "foam:", err)
		os.Exit(1)
	}
	// Spin up so precipitation and rivers are flowing.
	m.StepDays(3)
	m.Cpl.ResetBudget()
	store0 := m.Cpl.River.TotalStorage()
	m.StepDays(7)
	b := m.Cpl.Budget()
	store1 := m.Cpl.River.TotalStorage()
	fmt.Println("Hydrological budget over 7 simulated days (kg of water):")
	fmt.Printf("  precipitation on land: %13.4e\n", b.Precip)
	fmt.Printf("  evaporation from land: %13.4e\n", b.Evap)
	fmt.Printf("  runoff into rivers:    %13.4e\n", b.Runoff)
	fmt.Printf("  river inflow to ocean: %13.4e\n", b.RiverToOcean)
	fmt.Printf("  river storage change:  %13.4e\n", (store1-store0)*1000)
	resid := b.Runoff - b.RiverToOcean - (store1-store0)*1000
	fmt.Printf("  routing residual:      %13.4e  (%.4f%% of runoff)\n",
		resid, 100*resid/b.Runoff)

	// Largest river mouths.
	net := m.Cpl.River.Network()
	g := m.Atm.Grid()
	fmt.Println("\nRiver network:", countMouths(net.Dir), "mouths on the",
		g.NLat(), "x", g.NLon(), "atmosphere grid")
}

func countMouths(dir []int) int {
	n := 0
	for _, d := range dir {
		if d == -1 {
			n++
		}
	}
	return n
}
