// Variability: a short version of the paper's Figure 4 pipeline — run the
// coupled model, collect monthly SST, low-pass filter, EOF + VARIMAX, and
// report the leading rotated mode with its two-basin diagnostic. The full
// multi-decade version runs through cmd/foam-bench -fig4.
package main

import (
	"flag"
	"fmt"
	"os"

	"foam"
	"foam/internal/diag"
)

func main() {
	months := flag.Int("months", 36, "simulated months to run")
	flag.Parse()
	m, err := foam.New(foam.ReducedConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "foam:", err)
		os.Exit(1)
	}
	fmt.Printf("running %d simulated months...\n", *months)
	series := m.MonthlyMeanSST(*months)
	res, err := foam.AnalyzeVariability(m.Ocn.Grid(), m.Ocn.Mask(), series, 60)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analysis:", err)
		os.Exit(1)
	}
	fmt.Printf("leading rotated EOF: %.1f%% of low-passed variance\n", 100*res.VarFrac)
	fmt.Printf("two-basin loading product (positive = same sign, as Figure 4): %+.2f\n", res.BasinCorr)
	mask := make([]bool, len(m.Ocn.Mask()))
	for c, v := range m.Ocn.Mask() {
		mask[c] = v > 0
	}
	diag.AsciiMap(os.Stdout, m.Ocn.Grid(), res.Pattern, mask, 96, "\nLeading rotated SST pattern")
	fmt.Println("\nPC time series (normalized):")
	for t, v := range res.PC {
		if t%6 == 0 {
			fmt.Printf("  month %3d: %+.3f\n", t, v)
		}
	}
}
