// Seasonal: run the coupled model through a simulated year and track the
// tropical Pacific — warm pool and cold tongue indices, the seasonal cycle
// of hemispheric SST, and ice cover. The region the paper's Section 6
// singles out ("the tropical Pacific, an important region for climate
// variability because of ... El Nino").
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"foam"
	"foam/internal/diag"
	"foam/internal/sphere"
)

func main() {
	months := flag.Int("months", 12, "simulated months")
	pgm := flag.String("pgm", "", "write a final SST image (PGM) to this path")
	flag.Parse()
	m, err := foam.New(foam.ReducedConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "foam:", err)
		os.Exit(1)
	}
	g := m.Ocn.Grid()
	mask := m.Ocn.Mask()
	boxMean := func(f []float64, lat0, lat1, lon0, lon1 float64) float64 {
		num, den := 0.0, 0.0
		for j := 0; j < g.NLat(); j++ {
			latD := g.Lats[j] * sphere.Rad2Deg
			if latD < lat0 || latD > lat1 {
				continue
			}
			for i := 0; i < g.NLon(); i++ {
				lonD := g.Lons[i] * sphere.Rad2Deg
				if lonD > 180 {
					lonD -= 360
				}
				in := lonD >= lon0 && lonD <= lon1
				if lon0 > lon1 {
					in = lonD >= lon0 || lonD <= lon1
				}
				c := g.Index(j, i)
				if in && mask[c] > 0 {
					a := g.Area(j, i)
					num += f[c] * a
					den += a
				}
			}
		}
		if den <= 0 {
			return math.NaN()
		}
		return num / den
	}
	fmt.Printf("%6s %10s %10s %10s %10s %8s\n",
		"month", "warmpool", "coldtong", "NH-SST", "SH-SST", "ice%")
	series := m.MonthlyMeanSST(*months)
	for mo, sst := range series {
		wp := boxMean(sst, -10, 10, 120, 170)
		ct := boxMean(sst, -8, 8, -140, -90)
		nh := boxMean(sst, 20, 60, -180, 180)
		sh := boxMean(sst, -60, -20, -180, 180)
		fmt.Printf("%6d %10.2f %10.2f %10.2f %10.2f %7.1f%%\n",
			mo+1, wp, ct, nh, sh, 100*m.Cpl.Ice.Coverage())
	}
	if *pgm != "" {
		bm := make([]bool, len(mask))
		for c, v := range mask {
			bm[c] = v > 0
		}
		if err := diag.SavePGM(*pgm, g, m.SST(), bm); err != nil {
			fmt.Fprintln(os.Stderr, "pgm:", err)
			os.Exit(1)
		}
		fmt.Println("SST image written to", *pgm)
	}
}
