// Quickstart: compile the r5-quick scenario (the cheap rung of the model
// hierarchy, identical to the reduced configuration), run a simulated
// month, and print global diagnostics plus an ASCII map of the sea surface
// temperature.
package main

import (
	"fmt"
	"os"

	"foam"
	"foam/internal/diag"
)

func main() {
	cfg, err := foam.ScenarioConfig("r5-quick")
	if err != nil {
		fmt.Fprintln(os.Stderr, "foam:", err)
		os.Exit(1)
	}
	m, err := foam.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "foam:", err)
		os.Exit(1)
	}
	fmt.Printf("FOAM-Go quickstart: R%d atmosphere (%dx%dx%d), %dx%dx%d ocean\n",
		cfg.Atm.Trunc.M, cfg.Atm.NLat, cfg.Atm.NLon, cfg.Atm.NLev,
		cfg.Ocn.NLat, cfg.Ocn.NLon, cfg.Ocn.NLev)
	for day := 1; day <= 30; day++ {
		m.StepDays(1)
		if day%10 == 0 {
			d := m.Diagnostics()
			fmt.Printf("day %2d: mean T(atm)=%.1f K  ps=%.0f Pa  max wind=%.1f m/s  "+
				"SST=%.2f C  precip=%.2f mm/day\n",
				day, d.Atm.MeanT, d.Atm.MeanPs, d.Atm.MaxWind,
				d.Ocn.MeanSST, d.Atm.PrecipMean*86400)
		}
	}
	mask := make([]bool, len(m.Ocn.Mask()))
	for c, v := range m.Ocn.Mask() {
		mask[c] = v > 0
	}
	diag.AsciiMap(os.Stdout, m.Ocn.Grid(), m.SST(), mask, 96, "\nSea surface temperature (deg C)")
}
